//! Seeded SAT instance generators.
//!
//! The paper benchmarks on SATLIB's `uf20-91` suite: "uniform random 3-SAT
//! problems (20 variables and 91 clauses each, all satisfiable)" (§V-C).
//! Those files are not redistributable here, so [`uf20_91`] draws from the
//! same distribution — uniform 3-SAT at the m/n ≈ 4.55 phase-transition
//! ratio — and rejection-filters to satisfiable instances exactly as the
//! SATLIB suite was constructed. See DESIGN.md, "substitutions".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cnf::{Clause, Cnf, Lit, Model, Var};
use crate::dpll;
use crate::heuristics::Heuristic;

/// Uniform random k-SAT: each clause samples `k` *distinct* variables and
/// independent polarities (the SATLIB `uf` model).
pub fn random_ksat(seed: u64, num_vars: u32, num_clauses: usize, k: usize) -> Cnf {
    assert!(k as u32 <= num_vars, "clause width exceeds variable count");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut clauses = Vec::with_capacity(num_clauses);
    let mut picked: Vec<u32> = Vec::with_capacity(k);
    for _ in 0..num_clauses {
        picked.clear();
        while picked.len() < k {
            let v = rng.gen_range(0..num_vars);
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        let clause: Clause = picked
            .iter()
            .map(|&v| Lit::with_polarity(Var(v), rng.gen_bool(0.5)))
            .collect();
        clauses.push(clause);
    }
    Cnf::new(num_vars, clauses)
}

/// A satisfiable instance from the `uf20-91` distribution: uniform 3-SAT
/// with 20 variables and 91 clauses, rejection-sampled until satisfiable
/// (at the phase transition roughly half of raw draws are).
///
/// Distinct seeds give independent instances; the same seed always returns
/// the same formula.
pub fn uf20_91(seed: u64) -> Cnf {
    satisfiable_ksat(seed, 20, 91, 3)
}

/// Generalised satisfiable-filtered uniform k-SAT.
pub fn satisfiable_ksat(seed: u64, num_vars: u32, num_clauses: usize, k: usize) -> Cnf {
    // Derive a fresh stream per attempt so rejection does not correlate
    // neighbouring seeds.
    for attempt in 0u64..10_000 {
        let cnf = random_ksat(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt,
            num_vars,
            num_clauses,
            k,
        );
        let (result, _) = dpll::solve(&cnf, Heuristic::JeroslowWang);
        if result.is_sat() {
            return cnf;
        }
    }
    unreachable!("10k consecutive unsat draws at the phase transition");
}

/// A batch of independent satisfiable `uf20-91`-distribution instances —
/// the paper's "20 benchmark SAT problems" (§V-C / Figure 4 caption).
pub fn uf20_91_suite(base_seed: u64, count: usize) -> Vec<Cnf> {
    (0..count as u64).map(|i| uf20_91(base_seed + i)).collect()
}

/// Planted-solution k-SAT: guaranteed satisfiable instances of arbitrary
/// size (every clause contains at least one literal agreeing with a hidden
/// model). Used for scaling experiments beyond 20 variables, where
/// rejection sampling becomes impractical.
pub fn planted_ksat(seed: u64, num_vars: u32, num_clauses: usize, k: usize) -> (Cnf, Model) {
    assert!(k as u32 <= num_vars);
    let mut rng = SmallRng::seed_from_u64(seed);
    let hidden: Model = (0..num_vars).map(|_| rng.gen_bool(0.5)).collect();
    let mut clauses = Vec::with_capacity(num_clauses);
    let mut picked: Vec<u32> = Vec::with_capacity(k);
    for _ in 0..num_clauses {
        picked.clear();
        while picked.len() < k {
            let v = rng.gen_range(0..num_vars);
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        // Random polarities, then force one literal to agree with the
        // hidden model so the clause is satisfied by it.
        let mut lits: Vec<Lit> = picked
            .iter()
            .map(|&v| Lit::with_polarity(Var(v), rng.gen_bool(0.5)))
            .collect();
        let fix = rng.gen_range(0..k);
        let var = lits[fix].var();
        lits[fix] = Lit::with_polarity(var, hidden[var.0 as usize]);
        clauses.push(Clause::new(lits));
    }
    (Cnf::new(num_vars, clauses), hidden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::cnf::check_model;

    #[test]
    fn random_ksat_shape() {
        let cnf = random_ksat(1, 20, 91, 3);
        assert_eq!(cnf.num_vars(), 20);
        assert_eq!(cnf.num_clauses(), 91);
        for clause in cnf.clauses() {
            assert_eq!(clause.len(), 3);
            // Distinct variables within each clause.
            let mut vars: Vec<u32> = clause.lits().iter().map(|l| l.var().0).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(random_ksat(7, 10, 30, 3), random_ksat(7, 10, 30, 3));
        assert_ne!(random_ksat(7, 10, 30, 3), random_ksat(8, 10, 30, 3));
    }

    #[test]
    fn uf20_91_is_satisfiable() {
        for seed in 0..3 {
            let cnf = uf20_91(seed);
            assert_eq!(cnf.num_vars(), 20);
            assert_eq!(cnf.num_clauses(), 91);
            let (r, _) = dpll::solve(&cnf, Heuristic::FirstUnassigned);
            assert!(r.is_sat(), "seed {seed} produced UNSAT");
        }
    }

    #[test]
    fn suite_instances_are_distinct() {
        let suite = uf20_91_suite(100, 5);
        assert_eq!(suite.len(), 5);
        for i in 0..suite.len() {
            for j in (i + 1)..suite.len() {
                assert_ne!(suite[i], suite[j], "instances {i} and {j} identical");
            }
        }
    }

    #[test]
    fn planted_instances_are_satisfied_by_the_plant() {
        for seed in 0..5 {
            let (cnf, hidden) = planted_ksat(seed, 40, 160, 3);
            assert!(check_model(&cnf, &hidden), "seed {seed}");
        }
    }

    #[test]
    fn small_random_instances_match_brute_force() {
        // At this density most draws are satisfiable; just verify the
        // filtered generator agrees with the oracle.
        for seed in 0..5 {
            let cnf = satisfiable_ksat(seed, 8, 20, 3);
            assert!(brute::solve(&cnf).is_sat());
        }
    }
}
