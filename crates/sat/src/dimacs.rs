//! DIMACS CNF parsing and serialisation.
//!
//! The standard interchange format of the SATLIB benchmarks (§V-C, ref
//! \[42\]): a `p cnf <vars> <clauses>` header followed by zero-terminated
//! clauses; `c` lines are comments, `%`/`0` trailer lines (present in the
//! SATLIB uf20-91 files) are tolerated.

use crate::cnf::{Clause, Cnf, Lit};

/// Errors from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsError {
    /// No `p cnf` header line found.
    MissingHeader,
    /// Header malformed.
    BadHeader(String),
    /// A literal token failed to parse or referenced a variable beyond the
    /// declared count.
    BadLiteral(String),
    /// Fewer clauses than declared.
    TruncatedFormula {
        /// Declared count.
        declared: usize,
        /// Clauses actually present.
        found: usize,
    },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::MissingHeader => write!(f, "missing 'p cnf' header"),
            DimacsError::BadHeader(l) => write!(f, "malformed header: {l}"),
            DimacsError::BadLiteral(t) => write!(f, "bad literal: {t}"),
            DimacsError::TruncatedFormula { declared, found } => {
                write!(f, "header declares {declared} clauses, found {found}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS CNF document.
pub fn parse(text: &str) -> Result<Cnf, DimacsError> {
    let mut num_vars: Option<u32> = None;
    let mut declared_clauses = 0usize;
    let mut clauses = Vec::new();
    let mut current = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            break; // SATLIB trailer
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            num_vars = Some(
                parts[1]
                    .parse()
                    .map_err(|_| DimacsError::BadHeader(line.to_string()))?,
            );
            declared_clauses = parts[2]
                .parse()
                .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            clauses.reserve(declared_clauses);
            continue;
        }
        let vars = num_vars.ok_or(DimacsError::MissingHeader)?;
        for tok in line.split_whitespace() {
            let v: i32 = tok
                .parse()
                .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
            if v == 0 {
                clauses.push(Clause::new(std::mem::take(&mut current)));
            } else {
                if v.unsigned_abs() > vars {
                    return Err(DimacsError::BadLiteral(tok.to_string()));
                }
                current.push(Lit::from_dimacs(v));
            }
        }
    }
    let vars = num_vars.ok_or(DimacsError::MissingHeader)?;
    if !current.is_empty() {
        clauses.push(Clause::new(std::mem::take(&mut current)));
    }
    if clauses.len() < declared_clauses {
        return Err(DimacsError::TruncatedFormula {
            declared: declared_clauses,
            found: clauses.len(),
        });
    }
    Ok(Cnf::new(vars, clauses))
}

/// Serialises a formula to DIMACS.
pub fn to_string(cnf: &Cnf) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for lit in clause.lits() {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    const SAMPLE: &str = "\
c a tiny instance
p cnf 3 2
1 -2 0
2 3 -1 0
";

    #[test]
    fn parse_sample() {
        let cnf = parse(SAMPLE).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].lits()[1], Lit::neg(Var(1)));
    }

    #[test]
    fn roundtrip() {
        let cnf = parse(SAMPLE).unwrap();
        let text = to_string(&cnf);
        let again = parse(&text).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn multiline_clause_and_trailer() {
        let text = "p cnf 2 1\n1\n-2\n0\n%\n0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn errors() {
        assert_eq!(parse("1 2 0\n"), Err(DimacsError::MissingHeader));
        assert!(matches!(
            parse("p cnf x 2\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse("p cnf 2 1\n9 0\n"),
            Err(DimacsError::BadLiteral(_))
        ));
        assert!(matches!(
            parse("p cnf 2 5\n1 0\n"),
            Err(DimacsError::TruncatedFormula { .. })
        ));
    }
}
