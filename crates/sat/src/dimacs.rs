//! DIMACS CNF parsing and serialisation.
//!
//! The standard interchange format of the SATLIB benchmarks (§V-C, ref
//! \[42\]): a `p cnf <vars> <clauses>` header followed by zero-terminated
//! clauses; `c` lines are comments, `%`/`0` trailer lines (present in the
//! SATLIB uf20-91 files) are tolerated.

use crate::cnf::{Clause, Cnf, Lit};

/// Errors from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsError {
    /// No `p cnf` header line found.
    MissingHeader,
    /// Header malformed.
    BadHeader(String),
    /// A literal token failed to parse or referenced a variable beyond the
    /// declared count.
    BadLiteral(String),
    /// Fewer clauses than declared.
    TruncatedFormula {
        /// Declared count.
        declared: usize,
        /// Clauses actually present.
        found: usize,
    },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::MissingHeader => write!(f, "missing 'p cnf' header"),
            DimacsError::BadHeader(l) => write!(f, "malformed header: {l}"),
            DimacsError::BadLiteral(t) => write!(f, "bad literal: {t}"),
            DimacsError::TruncatedFormula { declared, found } => {
                write!(f, "header declares {declared} clauses, found {found}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS CNF document.
pub fn parse(text: &str) -> Result<Cnf, DimacsError> {
    let mut num_vars: Option<u32> = None;
    let mut declared_clauses = 0usize;
    let mut clauses = Vec::new();
    let mut current = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            break; // SATLIB trailer
        }
        if let Some(rest) = line.strip_prefix('p') {
            // A second header would silently reset the variable bound and
            // re-validate already-parsed literals against it; reject the
            // document instead.
            if num_vars.is_some() {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            let declared_vars: u32 = parts[1]
                .parse()
                .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            // Literals pack `var * 2 + sign` into a u32 (and render as
            // i32), so universes beyond i32::MAX variables would alias
            // silently; no real instance comes near this.
            if declared_vars > i32::MAX as u32 {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            num_vars = Some(declared_vars);
            declared_clauses = parts[2]
                .parse()
                .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            // An adversarial header ("p cnf 1 99999999999") must not
            // pre-allocate unbounded memory.
            clauses.reserve(declared_clauses.min(1 << 20));
            continue;
        }
        let vars = num_vars.ok_or(DimacsError::MissingHeader)?;
        for tok in line.split_whitespace() {
            let v: i32 = tok
                .parse()
                .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
            if v == 0 {
                clauses.push(Clause::new(std::mem::take(&mut current)));
            } else {
                if v.unsigned_abs() > vars {
                    return Err(DimacsError::BadLiteral(tok.to_string()));
                }
                current.push(Lit::from_dimacs(v));
            }
        }
    }
    let vars = num_vars.ok_or(DimacsError::MissingHeader)?;
    if !current.is_empty() {
        clauses.push(Clause::new(std::mem::take(&mut current)));
    }
    if clauses.len() < declared_clauses {
        return Err(DimacsError::TruncatedFormula {
            declared: declared_clauses,
            found: clauses.len(),
        });
    }
    Ok(Cnf::new(vars, clauses))
}

/// Serialises a formula to DIMACS.
pub fn to_string(cnf: &Cnf) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for lit in clause.lits() {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    const SAMPLE: &str = "\
c a tiny instance
p cnf 3 2
1 -2 0
2 3 -1 0
";

    #[test]
    fn parse_sample() {
        let cnf = parse(SAMPLE).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].lits()[1], Lit::neg(Var(1)));
    }

    #[test]
    fn roundtrip() {
        let cnf = parse(SAMPLE).unwrap();
        let text = to_string(&cnf);
        let again = parse(&text).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn multiline_clause_and_trailer() {
        let text = "p cnf 2 1\n1\n-2\n0\n%\n0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn errors() {
        assert_eq!(parse("1 2 0\n"), Err(DimacsError::MissingHeader));
        assert!(matches!(
            parse("p cnf x 2\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse("p cnf 2 1\n9 0\n"),
            Err(DimacsError::BadLiteral(_))
        ));
        assert!(matches!(
            parse("p cnf 2 5\n1 0\n"),
            Err(DimacsError::TruncatedFormula { .. })
        ));
    }

    #[test]
    fn duplicate_headers_are_rejected() {
        // Regression: a second `p cnf` line used to silently reset the
        // variable bound mid-document, accepting inconsistent files.
        let text = "p cnf 2 1\n1 0\np cnf 9 1\n9 0\n";
        assert!(matches!(parse(text), Err(DimacsError::BadHeader(_))));
    }

    #[test]
    fn absurd_variable_counts_are_rejected() {
        // Universes beyond i32::MAX variables would overflow the packed
        // literal representation; the header must be refused up front.
        let text = format!("p cnf {} 0\n", u32::MAX);
        assert!(matches!(parse(&text), Err(DimacsError::BadHeader(_))));
        // The largest representable universe still parses.
        let ok = format!("p cnf {} 0\n", i32::MAX);
        assert_eq!(parse(&ok).unwrap().num_vars(), i32::MAX as u32);
    }

    #[test]
    fn comments_and_crlf_anywhere_between_tokens() {
        // Comment lines may interrupt a clause split across lines, and
        // CRLF endings must not leak '\r' into literal tokens.
        let text = "c head\r\np cnf 3 2\r\n1\r\nc mid-clause comment\r\n-2 0\r\n2 3 0\r\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(
            cnf.clauses()[0].lits(),
            &[Lit::pos(Var(0)), Lit::neg(Var(1))]
        );
    }
}
