//! CNF formula representation.

/// A propositional variable, 0-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable or its negation, packed as `var * 2 + negated`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal with the given polarity (`true` = positive).
    #[inline]
    pub fn with_polarity(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The opposite literal of the same variable.
    #[inline]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The truth value this literal demands of its variable.
    #[inline]
    pub fn demanded_value(self) -> bool {
        self.is_pos()
    }

    /// Dense index usable for occurrence tables (`0..2 * num_vars`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses a non-zero DIMACS literal (`3` ⇒ x2 positive, `-1` ⇒ x0
    /// negated).
    pub fn from_dimacs(lit: i32) -> Lit {
        assert!(lit != 0, "DIMACS literal cannot be zero");
        let var = Var(lit.unsigned_abs() - 1);
        Lit::with_polarity(var, lit > 0)
    }

    /// Serialises to DIMACS convention.
    pub fn to_dimacs(self) -> i32 {
        let v = (self.var().0 + 1) as i32;
        if self.is_pos() {
            v
        } else {
            -v
        }
    }
}

impl std::fmt::Debug for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// A disjunction of literals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Builds a clause from literals.
    pub fn new(lits: Vec<Lit>) -> Clause {
        Clause { lits }
    }

    /// The literals.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// An empty clause is unsatisfiable.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// A unit clause forces its only literal (Listing 4 line 7).
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// Whether the clause contains `lit`.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Clause {
        Clause {
            lits: iter.into_iter().collect(),
        }
    }
}

/// A complete truth assignment, indexed by variable.
pub type Model = Vec<bool>;

/// A partial truth assignment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<Option<bool>>,
}

impl Assignment {
    /// An empty assignment over `num_vars` variables.
    pub fn new(num_vars: u32) -> Assignment {
        Assignment {
            values: vec![None; num_vars as usize],
        }
    }

    /// Value of `var`, if assigned.
    #[inline]
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values[var.0 as usize]
    }

    /// Assigns `var := value`; panics if already assigned differently.
    pub fn assign(&mut self, var: Var, value: bool) {
        let slot = &mut self.values[var.0 as usize];
        debug_assert!(
            slot.is_none() || *slot == Some(value),
            "conflicting assignment of {var:?}"
        );
        *slot = Some(value);
    }

    /// Number of assigned variables.
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Number of unassigned variables.
    pub fn unassigned_count(&self) -> usize {
        self.values.len() - self.assigned_count()
    }

    /// Completes the assignment into a [`Model`], defaulting free variables
    /// to `false` (safe once the reduced formula is empty: no remaining
    /// clause constrains them).
    pub fn complete(&self) -> Model {
        self.values.iter().map(|v| v.unwrap_or(false)).collect()
    }

    /// Whether a literal is satisfied/falsified/unassigned under this
    /// assignment.
    pub fn lit_status(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v == lit.demanded_value())
    }
}

/// A CNF formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Builds a formula over `num_vars` variables.
    pub fn new(num_vars: u32, clauses: Vec<Clause>) -> Cnf {
        let cnf = Cnf { num_vars, clauses };
        debug_assert!(cnf
            .clauses
            .iter()
            .flat_map(|c| c.lits())
            .all(|l| l.var().0 < num_vars));
        cnf
    }

    /// Number of variables in the universe (not all need occur).
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// `consistent(problem)` from Listing 4 line 2: an empty clause set is
    /// trivially satisfied.
    pub fn is_trivially_sat(&self) -> bool {
        self.clauses.is_empty()
    }

    /// `exist_empty_clause(problem)` from Listing 4 line 4.
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// Applies `var := value`: satisfied clauses vanish, falsified literals
    /// are deleted (the `assign(problem, L, v)` of Listing 4 lines 13–14).
    pub fn assign(&self, var: Var, value: bool) -> Cnf {
        let satisfied = Lit::with_polarity(var, value);
        let falsified = satisfied.negated();
        let clauses = self
            .clauses
            .iter()
            .filter(|c| !c.contains(satisfied))
            .map(|c| {
                c.lits()
                    .iter()
                    .copied()
                    .filter(|&l| l != falsified)
                    .collect()
            })
            .collect();
        Cnf {
            num_vars: self.num_vars,
            clauses,
        }
    }

    /// Evaluates the formula under a complete model.
    pub fn eval(&self, model: &Model) -> bool {
        self.clauses.iter().all(|c| {
            c.lits()
                .iter()
                .any(|l| model[l.var().0 as usize] == l.demanded_value())
        })
    }

    /// All literals occurring in the formula (with repetition).
    pub fn iter_lits(&self) -> impl Iterator<Item = Lit> + '_ {
        self.clauses.iter().flat_map(|c| c.lits().iter().copied())
    }
}

/// Checks a model against a formula (used to validate solver output).
pub fn check_model(cnf: &Cnf, model: &Model) -> bool {
    model.len() == cnf.num_vars() as usize && cnf.eval(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn literal_packing() {
        let x0 = Var(0);
        assert!(Lit::pos(x0).is_pos());
        assert!(!Lit::neg(x0).is_pos());
        assert_eq!(Lit::pos(x0).negated(), Lit::neg(x0));
        assert_eq!(Lit::pos(x0).var(), x0);
        assert_eq!(Lit::neg(Var(5)).index(), 11);
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [-7, -1, 1, 3, 42] {
            assert_eq!(lit(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "cannot be zero")]
    fn zero_dimacs_rejected() {
        Lit::from_dimacs(0);
    }

    #[test]
    fn assign_simplifies() {
        // (x1 | x2) & (!x1 | x3) & (x2 | x3)
        let cnf = Cnf::new(
            3,
            vec![
                Clause::new(vec![lit(1), lit(2)]),
                Clause::new(vec![lit(-1), lit(3)]),
                Clause::new(vec![lit(2), lit(3)]),
            ],
        );
        let after = cnf.assign(Var(0), true);
        // First clause satisfied; second loses !x1.
        assert_eq!(after.num_clauses(), 2);
        assert_eq!(after.clauses()[0], Clause::new(vec![lit(3)]));
        assert!(after.clauses()[0].is_unit());

        let contradiction = after.assign(Var(2), false);
        assert!(contradiction.has_empty_clause());
    }

    #[test]
    fn eval_and_check_model() {
        let cnf = Cnf::new(
            2,
            vec![
                Clause::new(vec![lit(1), lit(2)]),
                Clause::new(vec![lit(-1), lit(2)]),
            ],
        );
        assert!(cnf.eval(&vec![false, true]));
        assert!(!cnf.eval(&vec![false, false]));
        assert!(check_model(&cnf, &vec![true, true]));
        assert!(!check_model(&cnf, &vec![true])); // wrong width
    }

    #[test]
    fn assignment_bookkeeping() {
        let mut a = Assignment::new(4);
        assert_eq!(a.unassigned_count(), 4);
        a.assign(Var(1), true);
        a.assign(Var(3), false);
        assert_eq!(a.assigned_count(), 2);
        assert_eq!(a.value(Var(1)), Some(true));
        assert_eq!(a.value(Var(0)), None);
        assert_eq!(a.complete(), vec![false, true, false, false]);
        assert_eq!(a.lit_status(lit(2)), Some(true));
        assert_eq!(a.lit_status(lit(-2)), Some(false));
        assert_eq!(a.lit_status(lit(1)), None);
    }

    #[test]
    fn trivial_states() {
        let empty = Cnf::new(2, vec![]);
        assert!(empty.is_trivially_sat());
        assert!(!empty.has_empty_clause());
        let falsum = Cnf::new(2, vec![Clause::new(vec![])]);
        assert!(falsum.has_empty_clause());
        assert!(!falsum.is_trivially_sat());
    }
}
