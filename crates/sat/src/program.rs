//! Listing 4: DPLL as a layer-4/5 recursive program.
//!
//! ```text
//! function solve_sat(problem):
//!     if consistent(problem) then yield Result(SAT)
//!     if exist_empty_clause(problem) then yield Result(UNSAT)
//!     ... unit_propagate ... assign_pure ...
//!     L <- select_literal(problem)
//!     subp1 <- assign(problem, L, True)
//!     subp2 <- assign(problem, L, False)
//!     yield [is_SAT, Call(subp1), Call(subp2)]
//!     result <- yield Sync()
//!     yield result
//! ```
//!
//! Each activation simplifies its sub-problem, finishes if decided, and
//! otherwise forks the two polarity branches as *speculative* sub-calls
//! joined by non-deterministic choice: whichever returns SAT first resumes
//! the activation "without waiting for [the] other result" (§V-B); if both
//! return UNSAT the activation is UNSAT.

use hyperspace_mapping::Weight;
use hyperspace_recursion::{Join, RecProgram, Resumed, Spawn, Step};

use crate::cnf::{Assignment, Cnf, Model};
use crate::heuristics::Heuristic;
use crate::simplify::{simplify_with, Simplified, SimplifyMode};

/// A self-contained DPLL sub-problem, as shipped between nodes: the
/// residual formula plus the assignment accumulated on the path to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubProblem {
    /// Residual formula (satisfied clauses and falsified literals already
    /// removed).
    pub cnf: Cnf,
    /// Assignments made so far (decision + forced), full-width.
    pub assign: Assignment,
    /// Remaining discrepancy budget (limited-discrepancy search): how many
    /// more times this path may deviate from the heuristic's preferred
    /// branch. `None` — the default — is the classic unlimited search.
    /// At `Some(0)` only the preferred branch is spawned, so the tree an
    /// LDS run explores is a pure function of the root budget — and a
    /// run ending `Unsat` is *inconclusive* (a model may hide behind a
    /// denied discrepancy), which the portfolio layer reports as an
    /// exhausted attempt rather than a verdict.
    pub discrepancy: Option<u64>,
}

impl SubProblem {
    /// The root sub-problem of a formula (unlimited discrepancies).
    pub fn root(cnf: Cnf) -> SubProblem {
        let assign = Assignment::new(cnf.num_vars());
        SubProblem {
            cnf,
            assign,
            discrepancy: None,
        }
    }

    /// The root sub-problem with a limited-discrepancy budget.
    pub fn with_discrepancy(mut self, budget: u64) -> SubProblem {
        self.discrepancy = Some(budget);
        self
    }
}

/// The verdict carried back through the mesh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfiable with this witness.
    Sat(Model),
    /// This branch admits no model.
    Unsat,
}

impl Verdict {
    /// The `is_SAT` validator of Listing 4 line 15.
    pub fn is_sat(&self) -> bool {
        matches!(self, Verdict::Sat(_))
    }
}

/// Which polarity of the selected branching literal is tried first — a
/// portfolio-diversification knob: both branches are eventually explored
/// (they race speculatively), but the order decides which half of the
/// search space the mesh floods into first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Polarity {
    /// Try the literal in the polarity the heuristic demanded (the
    /// classic behaviour).
    #[default]
    Positive,
    /// Try the negated polarity first.
    Negative,
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Polarity::Positive => "pos",
            Polarity::Negative => "neg",
        })
    }
}

impl std::str::FromStr for Polarity {
    type Err = crate::heuristics::SatSpecParseError;

    /// Parses the [`Display`](std::fmt::Display) syntax: `pos`, `neg`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pos" => Ok(Polarity::Positive),
            "neg" => Ok(Polarity::Negative),
            other => Err(crate::heuristics::SatSpecParseError(format!(
                "{s:?}: expected pos or neg, got {other:?}"
            ))),
        }
    }
}

/// Listing 4's `solve_sat` as a [`RecProgram`].
pub struct DpllProgram {
    heuristic: Heuristic,
    mode: SimplifyMode,
    polarity: Polarity,
}

impl DpllProgram {
    /// A program branching with the given heuristic and fixpoint
    /// simplification (the strongest solver).
    pub fn new(heuristic: Heuristic) -> Self {
        DpllProgram {
            heuristic,
            mode: SimplifyMode::Fixpoint,
            polarity: Polarity::Positive,
        }
    }

    /// Selects the per-activation simplification strength (workload knob
    /// for the scaling experiments; see [`SimplifyMode`]).
    pub fn with_mode(mut self, mode: SimplifyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects which branch polarity is tried first (portfolio
    /// diversification; see [`Polarity`]).
    pub fn with_polarity(mut self, polarity: Polarity) -> Self {
        self.polarity = polarity;
        self
    }

    /// The branching heuristic in use.
    pub fn heuristic(&self) -> Heuristic {
        self.heuristic
    }

    /// The simplification mode in use.
    pub fn mode(&self) -> SimplifyMode {
        self.mode
    }

    /// The first-branch polarity in use.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }
}

impl RecProgram for DpllProgram {
    type Arg = SubProblem;
    type Out = Verdict;
    /// Nothing is live across the suspension: the continuation merely
    /// forwards the chosen branch's verdict (or UNSAT).
    type Frame = ();

    fn start(&self, mut sub: SubProblem) -> Step<Self> {
        let (state, _) = simplify_with(&mut sub.cnf, &mut sub.assign, self.mode);
        match state {
            Simplified::Sat => return Step::Done(Verdict::Sat(sub.assign.complete())),
            Simplified::Unsat => return Step::Done(Verdict::Unsat),
            Simplified::Undecided => {}
        }
        let mut lit = self
            .heuristic
            .select(&sub.cnf)
            .expect("undecided formula has literals");
        if self.polarity == Polarity::Negative {
            lit = lit.negated();
        }

        let mut assign_true = sub.assign.clone();
        assign_true.assign(lit.var(), lit.demanded_value());
        let subp1 = SubProblem {
            cnf: sub.cnf.assign(lit.var(), lit.demanded_value()),
            assign: assign_true,
            // Following the heuristic costs no discrepancy.
            discrepancy: sub.discrepancy,
        };

        // The preferred branch alone when the discrepancy budget is spent:
        // deviating would cost a discrepancy we no longer have.
        if sub.discrepancy == Some(0) {
            return Step::Spawn(Spawn {
                calls: vec![subp1],
                join: Join::Any(|v: &Verdict| v.is_sat()),
                frame: (),
            });
        }

        let mut assign_false = sub.assign;
        assign_false.assign(lit.var(), !lit.demanded_value());
        let subp2 = SubProblem {
            cnf: sub.cnf.assign(lit.var(), !lit.demanded_value()),
            assign: assign_false,
            // Going against the heuristic spends one discrepancy.
            discrepancy: sub.discrepancy.map(|d| d - 1),
        };

        Step::Spawn(Spawn {
            calls: vec![subp1, subp2],
            join: Join::Any(|v: &Verdict| v.is_sat()),
            frame: (),
        })
    }

    fn resume(&self, _frame: (), results: Resumed<Verdict>) -> Step<Self> {
        match results {
            Resumed::Any(Some(v)) => Step::Done(v),
            Resumed::Any(None) => Step::Done(Verdict::Unsat),
            Resumed::All(_) => unreachable!("DPLL only uses Any joins"),
        }
    }

    /// Cross-layer hint (§III-B3): residual clause count approximates the
    /// work a sub-problem represents.
    fn weight(&self, arg: &SubProblem) -> Weight {
        arg.cnf.num_clauses() as Weight
    }

    /// A subtree denied by a budget (e.g. the strategy language's
    /// `limit(nodes,N)`) answers `Unsat` — neutral under the `Any` join
    /// (it never wins the race), so a budget-limited run reporting
    /// `Unsat` is *inconclusive*, exactly like an exhausted
    /// limited-discrepancy search.
    fn pruned(&self, _arg: &SubProblem) -> Option<Verdict> {
        Some(Verdict::Unsat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::cnf::check_model;
    use crate::gen;
    use hyperspace_recursion::eval_local;

    #[test]
    fn local_evaluation_matches_oracle() {
        for seed in 0..20 {
            let cnf = gen::random_ksat(seed, 8, 34, 3);
            let program = DpllProgram::new(Heuristic::JeroslowWang);
            let verdict = eval_local(&program, SubProblem::root(cnf.clone()));
            let oracle = brute::solve(&cnf);
            assert_eq!(
                verdict.is_sat(),
                oracle.is_sat(),
                "seed {seed}: distributed-program semantics diverge from oracle"
            );
            if let Verdict::Sat(model) = verdict {
                assert!(check_model(&cnf, &model), "seed {seed}: invalid model");
            }
        }
    }

    #[test]
    fn weight_is_clause_count() {
        let cnf = gen::random_ksat(3, 10, 40, 3);
        let program = DpllProgram::new(Heuristic::FirstUnassigned);
        assert_eq!(program.weight(&SubProblem::root(cnf)), 40);
    }

    #[test]
    fn negative_polarity_still_matches_oracle() {
        for seed in 0..12 {
            let cnf = gen::random_ksat(seed, 8, 34, 3);
            let program =
                DpllProgram::new(Heuristic::JeroslowWang).with_polarity(Polarity::Negative);
            let verdict = eval_local(&program, SubProblem::root(cnf.clone()));
            let oracle = brute::solve(&cnf);
            assert_eq!(verdict.is_sat(), oracle.is_sat(), "seed {seed}");
            if let Verdict::Sat(model) = verdict {
                assert!(check_model(&cnf, &model), "seed {seed}");
            }
        }
    }

    #[test]
    fn polarity_round_trips_and_defaults_positive() {
        assert_eq!(
            DpllProgram::new(Heuristic::Dlis).polarity(),
            Polarity::Positive
        );
        for p in [Polarity::Positive, Polarity::Negative] {
            assert_eq!(p.to_string().parse::<Polarity>().unwrap(), p);
        }
        assert!("positive".parse::<Polarity>().is_err());
    }

    #[test]
    fn sat_parse_errors_share_the_expected_got_shape() {
        use crate::cdcl::RestartPolicy;

        let cases: [(&str, String); 4] = [
            (
                "\"up\": expected pos or neg, got \"up\"",
                "up".parse::<Polarity>().unwrap_err().to_string(),
            ),
            (
                "\"vsids\": expected first, most-frequent, dlis, jeroslow-wang or random:SEED, \
                 got \"vsids\"",
                "vsids".parse::<Heuristic>().unwrap_err().to_string(),
            ),
            (
                "\"none\": expected fixpoint, single-pass or split-only, got \"none\"",
                "none".parse::<SimplifyMode>().unwrap_err().to_string(),
            ),
            (
                "\"luby:0\": expected off, fixed:N or luby:N, got \"luby:0\"",
                "luby:0".parse::<RestartPolicy>().unwrap_err().to_string(),
            ),
        ];
        for (expected, got) in cases {
            assert_eq!(got, format!("invalid solver spec: {expected}"));
        }
    }

    #[test]
    fn limited_discrepancy_sat_verdicts_are_sound() {
        // An LDS run may miss models (Unsat is inconclusive), but any model
        // it does report must be genuine, and a generous budget must
        // reconverge with the oracle.
        for seed in 0..12 {
            let cnf = gen::random_ksat(seed, 8, 34, 3);
            let oracle = brute::solve(&cnf);
            let program = DpllProgram::new(Heuristic::JeroslowWang);
            for budget in [0, 1, 2, 64] {
                let root = SubProblem::root(cnf.clone()).with_discrepancy(budget);
                let verdict = eval_local(&program, root);
                if let Verdict::Sat(model) = &verdict {
                    assert!(check_model(&cnf, model), "seed {seed} budget {budget}");
                }
                if verdict.is_sat() {
                    assert!(
                        oracle.is_sat(),
                        "seed {seed} budget {budget}: phantom model"
                    );
                }
            }
            // 64 discrepancies over 8 variables is effectively unbounded.
            let root = SubProblem::root(cnf.clone()).with_discrepancy(64);
            assert_eq!(
                eval_local(&program, root).is_sat(),
                oracle.is_sat(),
                "seed {seed}: generous LDS budget diverges from oracle"
            );
        }
    }

    #[test]
    fn zero_discrepancy_follows_only_the_heuristic_path() {
        // With budget 0 the search is a single heuristic-guided probe.
        let cnf = gen::uf20_91(7);
        let program = DpllProgram::new(Heuristic::JeroslowWang);
        let root = SubProblem::root(cnf.clone()).with_discrepancy(0);
        if let Verdict::Sat(model) = eval_local(&program, root) {
            assert!(check_model(&cnf, &model));
        }
    }

    #[test]
    fn uf20_local_run() {
        let cnf = gen::uf20_91(42);
        let program = DpllProgram::new(Heuristic::JeroslowWang);
        let verdict = eval_local(&program, SubProblem::root(cnf.clone()));
        match verdict {
            Verdict::Sat(model) => assert!(check_model(&cnf, &model)),
            Verdict::Unsat => panic!("uf20-91 instances are satisfiable"),
        }
    }
}
