//! Problem simplification: unit propagation and pure-literal assignment
//! (Listing 4, lines 6–11).

use crate::cnf::{Assignment, Cnf, Lit};

/// Outcome of simplifying a sub-problem to fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Simplified {
    /// Every clause satisfied; the accompanying assignment (completed with
    /// `false` for free variables) is a model.
    Sat,
    /// An empty clause appeared: this branch is unsatisfiable.
    Unsat,
    /// Neither: a decision is required.
    Undecided,
}

/// Statistics of one simplification pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Variables forced by unit clauses.
    pub unit_props: u64,
    /// Variables fixed by pure-literal elimination.
    pub pure_assigns: u64,
}

/// How aggressively each activation simplifies before branching.
///
/// The choice decides the *workload* a formula generates on the mesh: the
/// stronger the simplification, the smaller the speculative search tree.
/// Our fixpoint DPLL collapses uf20-91 instances to a few dozen
/// activations, far below the traffic the paper's evaluation exhibits
/// (Figure 5 shows hundreds of queued messages on 196 cores), so the
/// benchmark harness also offers the weaker modes — see EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimplifyMode {
    /// Unit propagation and pure-literal assignment to fixpoint (the
    /// strongest solver; the library default).
    #[default]
    Fixpoint,
    /// One pass of unit propagation over the current clause list followed
    /// by one pass of pure-literal assignment — the literal reading of
    /// Listing 4's straight-line body (lines 6–11).
    SinglePass,
    /// No propagation at all: pure Davis–Putnam splitting. Generates the
    /// largest speculative trees (roughly the message volume the paper's
    /// plots imply).
    SplitOnly,
}

impl std::fmt::Display for SimplifyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimplifyMode::Fixpoint => "fixpoint",
            SimplifyMode::SinglePass => "single-pass",
            SimplifyMode::SplitOnly => "split-only",
        })
    }
}

impl std::str::FromStr for SimplifyMode {
    type Err = crate::heuristics::SatSpecParseError;

    /// Parses the [`Display`](std::fmt::Display) syntax: `fixpoint`,
    /// `single-pass`, `split-only`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fixpoint" => Ok(SimplifyMode::Fixpoint),
            "single-pass" => Ok(SimplifyMode::SinglePass),
            "split-only" => Ok(SimplifyMode::SplitOnly),
            other => Err(crate::heuristics::SatSpecParseError(format!(
                "{s:?}: expected fixpoint, single-pass or split-only, got {other:?}"
            ))),
        }
    }
}

/// Runs unit propagation and pure-literal assignment to fixpoint, mutating
/// the formula and recording forced values in `assignment`.
pub fn simplify(cnf: &mut Cnf, assignment: &mut Assignment) -> (Simplified, SimplifyStats) {
    simplify_with(cnf, assignment, SimplifyMode::Fixpoint)
}

/// [`simplify`] with an explicit [`SimplifyMode`].
pub fn simplify_with(
    cnf: &mut Cnf,
    assignment: &mut Assignment,
    mode: SimplifyMode,
) -> (Simplified, SimplifyStats) {
    let mut stats = SimplifyStats::default();
    let mut first_iteration = true;
    loop {
        if cnf.has_empty_clause() {
            return (Simplified::Unsat, stats);
        }
        if cnf.is_trivially_sat() {
            return (Simplified::Sat, stats);
        }
        if !first_iteration && mode != SimplifyMode::Fixpoint {
            return (Simplified::Undecided, stats);
        }
        if mode == SimplifyMode::SplitOnly {
            return (Simplified::Undecided, stats);
        }
        let mut changed = false;
        // Unit propagation (lines 6–8): drain every unit clause reachable
        // from the current formula.
        while let Some(unit) = cnf.clauses().iter().find(|c| c.is_unit()) {
            let lit = unit.lits()[0];
            assignment.assign(lit.var(), lit.demanded_value());
            *cnf = cnf.assign(lit.var(), lit.demanded_value());
            stats.unit_props += 1;
            changed = true;
            if cnf.has_empty_clause() {
                return (Simplified::Unsat, stats);
            }
        }
        // Pure-literal assignment (lines 9–11): a variable occurring with a
        // single polarity can be fixed to satisfy all its clauses.
        while let Some(pure) = find_pure_literal(cnf) {
            assignment.assign(pure.var(), pure.demanded_value());
            *cnf = cnf.assign(pure.var(), pure.demanded_value());
            stats.pure_assigns += 1;
            changed = true;
            if mode == SimplifyMode::SinglePass {
                break;
            }
        }
        first_iteration = false;
        if !changed {
            return (Simplified::Undecided, stats);
        }
    }
}

/// Finds a literal whose variable occurs with only one polarity, if any.
pub fn find_pure_literal(cnf: &Cnf) -> Option<Lit> {
    let n = cnf.num_vars() as usize;
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for lit in cnf.iter_lits() {
        if lit.is_pos() {
            pos[lit.var().0 as usize] = true;
        } else {
            neg[lit.var().0 as usize] = true;
        }
    }
    for v in 0..n {
        if pos[v] != neg[v] {
            let var = crate::cnf::Var(v as u32);
            return Some(Lit::with_polarity(var, pos[v]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{check_model, Var};

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    fn cnf(clauses: &[&[i32]], vars: u32) -> Cnf {
        Cnf::new(
            vars,
            clauses
                .iter()
                .map(|c| c.iter().map(|&d| lit(d)).collect())
                .collect(),
        )
    }

    #[test]
    fn unit_propagation_chain() {
        // x1 & (!x1 | x2) & (!x2 | x3): pure unit chain to SAT.
        let mut f = cnf(&[&[1], &[-1, 2], &[-2, 3]], 3);
        let mut a = Assignment::new(3);
        let (out, stats) = simplify(&mut f, &mut a);
        assert_eq!(out, Simplified::Sat);
        assert!(stats.unit_props >= 1);
        let original = cnf(&[&[1], &[-1, 2], &[-2, 3]], 3);
        assert!(check_model(&original, &a.complete()));
    }

    #[test]
    fn unit_conflict_detected() {
        let mut f = cnf(&[&[1], &[-1]], 1);
        let mut a = Assignment::new(1);
        let (out, _) = simplify(&mut f, &mut a);
        assert_eq!(out, Simplified::Unsat);
    }

    #[test]
    fn pure_literal_eliminates() {
        // x1 occurs only positively: fixing it satisfies both clauses.
        let mut f = cnf(&[&[1, 2], &[1, -2]], 2);
        let mut a = Assignment::new(2);
        let (out, stats) = simplify(&mut f, &mut a);
        assert_eq!(out, Simplified::Sat);
        assert!(stats.pure_assigns >= 1);
        assert_eq!(a.value(Var(0)), Some(true));
    }

    #[test]
    fn undecided_when_branching_needed() {
        // 2-SAT with both polarities everywhere and no units.
        let mut f = cnf(&[&[1, 2], &[-1, -2], &[1, -2], &[-1, 2]], 2);
        let mut a = Assignment::new(2);
        let (out, stats) = simplify(&mut f, &mut a);
        assert_eq!(out, Simplified::Undecided);
        assert_eq!(stats.unit_props, 0);
        assert_eq!(stats.pure_assigns, 0);
    }

    #[test]
    fn find_pure_none_when_mixed() {
        let f = cnf(&[&[1, -2], &[-1, 2]], 2);
        assert_eq!(find_pure_literal(&f), None);
    }

    #[test]
    fn find_pure_negative_polarity() {
        let f = cnf(&[&[-1, 2], &[-1, -2]], 2);
        assert_eq!(find_pure_literal(&f), Some(lit(-1)));
    }
}
