//! Sequential DPLL: the single-core reference solver.
//!
//! Functionally identical to the distributed [`crate::DpllProgram`] but
//! with classic depth-first backtracking: the "try `L = true` first, then
//! `L = false`" order replaces the mesh's speculative evaluation of both.

use crate::cnf::{check_model, Assignment, Cnf, Model};
use crate::heuristics::Heuristic;
use crate::simplify::{simplify, Simplified};

/// Verdict of a solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

/// Search statistics (workload measures for the experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Unit propagations applied.
    pub unit_props: u64,
    /// Pure-literal assignments applied.
    pub pure_assigns: u64,
    /// Search-tree nodes visited (calls to the recursive solver).
    pub nodes: u64,
    /// Deepest decision level reached.
    pub max_depth: u64,
}

/// Solves `cnf` with the given branching heuristic.
///
/// Returns the verdict and search statistics. Any returned model is
/// verified against the input before returning (a `debug_assert`).
pub fn solve(cnf: &Cnf, heuristic: Heuristic) -> (SatResult, SolveStats) {
    let mut stats = SolveStats::default();
    let assignment = Assignment::new(cnf.num_vars());
    let result = recurse(cnf.clone(), assignment, heuristic, 0, &mut stats);
    if let SatResult::Sat(model) = &result {
        debug_assert!(check_model(cnf, model), "solver produced invalid model");
    }
    (result, stats)
}

fn recurse(
    mut cnf: Cnf,
    mut assignment: Assignment,
    heuristic: Heuristic,
    depth: u64,
    stats: &mut SolveStats,
) -> SatResult {
    stats.nodes += 1;
    stats.max_depth = stats.max_depth.max(depth);

    let (state, sstats) = simplify(&mut cnf, &mut assignment);
    stats.unit_props += sstats.unit_props;
    stats.pure_assigns += sstats.pure_assigns;
    match state {
        Simplified::Sat => return SatResult::Sat(assignment.complete()),
        Simplified::Unsat => return SatResult::Unsat,
        Simplified::Undecided => {}
    }

    let lit = heuristic
        .select(&cnf)
        .expect("undecided formula has literals");
    stats.decisions += 1;

    // First branch: the heuristic's preferred polarity.
    let mut first = assignment.clone();
    first.assign(lit.var(), lit.demanded_value());
    let sub1 = cnf.assign(lit.var(), lit.demanded_value());
    if let SatResult::Sat(m) = recurse(sub1, first, heuristic, depth + 1, stats) {
        return SatResult::Sat(m);
    }

    // Second branch: the negation.
    assignment.assign(lit.var(), !lit.demanded_value());
    let sub2 = cnf.assign(lit.var(), !lit.demanded_value());
    recurse(sub2, assignment, heuristic, depth + 1, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit};
    use crate::heuristics::ALL_HEURISTICS;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    fn cnf(clauses: &[&[i32]], vars: u32) -> Cnf {
        Cnf::new(
            vars,
            clauses
                .iter()
                .map(|c| c.iter().map(|&d| lit(d)).collect::<Clause>())
                .collect(),
        )
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let (r, _) = solve(&cnf(&[], 1), Heuristic::FirstUnassigned);
        assert!(r.is_sat());
        let (r, _) = solve(&cnf(&[&[1], &[-1]], 1), Heuristic::FirstUnassigned);
        assert_eq!(r, SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole: p1 & p2 & (!p1 | !p2).
        let f = cnf(&[&[1], &[2], &[-1, -2]], 2);
        for h in ALL_HEURISTICS {
            let (r, _) = solve(&f, h);
            assert_eq!(r, SatResult::Unsat, "{h}");
        }
    }

    #[test]
    fn simple_sat_with_model_check() {
        let f = cnf(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2, 3]], 3);
        for h in ALL_HEURISTICS {
            let (r, _) = solve(&f, h);
            let model = r.model().unwrap_or_else(|| panic!("{h} said UNSAT"));
            assert!(check_model(&f, model), "{h} model invalid");
        }
    }

    #[test]
    fn stats_are_recorded() {
        // Needs at least one real decision.
        let f = cnf(&[&[1, 2], &[-1, -2], &[1, -2], &[-1, 2]], 2);
        let (r, stats) = solve(&f, Heuristic::FirstUnassigned);
        assert_eq!(r, SatResult::Unsat);
        assert!(stats.decisions >= 1);
        assert!(stats.nodes >= 3);
        assert!(stats.max_depth >= 1);
    }

    #[test]
    fn unsat_php_3_into_2() {
        // Pigeonhole: 3 pigeons, 2 holes. Variables p(i,h) = i*2+h+1.
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3i32 {
            clauses.push(vec![i * 2 + 1, i * 2 + 2]); // each pigeon somewhere
        }
        for h in 0..2i32 {
            for i in 0..3i32 {
                for j in (i + 1)..3i32 {
                    clauses.push(vec![-(i * 2 + h + 1), -(j * 2 + h + 1)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let f = cnf(&refs, 6);
        let (r, stats) = solve(&f, Heuristic::JeroslowWang);
        assert_eq!(r, SatResult::Unsat);
        assert!(stats.nodes > 1);
    }
}
