//! Boolean satisfiability substrate for the hyperspace solver stack.
//!
//! The paper's evaluation (§V) runs a "barebone implementation of the
//! Davis-Putnam-Logemann-Loveland (DPLL) algorithm" over uniform random
//! 3-SAT problems (20 variables, 91 clauses, all satisfiable — the SATLIB
//! `uf20-91` suite). This crate supplies every piece of that workload:
//!
//! * [`Cnf`] / [`Lit`] / [`Clause`] — formula representation, plus DIMACS
//!   parsing and serialisation ([`dimacs`]);
//! * [`gen`] — seeded uniform random k-SAT (the SATLIB distribution), a
//!   satisfiable-filtered `uf20_91` generator substituting for the offline
//!   benchmark files, and a planted-solution generator for larger instances;
//! * [`simplify`] — unit propagation and pure-literal assignment
//!   (Listing 4 lines 6–11);
//! * [`heuristics`] — branching-variable selection (first-unassigned,
//!   most-frequent, DLIS, Jeroslow-Wang, seeded random);
//! * [`dpll`] — the sequential reference solver with search statistics;
//! * [`cdcl`] — a clause-learning/backjumping baseline (the machinery the
//!   paper's barebone solver deliberately omits, §V-B);
//! * [`brute`] — an exhaustive oracle for property tests;
//! * [`DpllProgram`] — Listing 4 itself: DPLL as a layer-4/5
//!   [`hyperspace_recursion::RecProgram`], forking each decision into two
//!   speculative sub-problems joined by non-deterministic choice.

#![warn(missing_docs)]

pub mod brute;
pub mod cdcl;
mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod gen;
pub mod heuristics;
mod program;
pub mod simplify;

pub use cdcl::{CdclConfig, CdclSolver, CdclStatus, RestartPolicy};
pub use cnf::{check_model, Assignment, Clause, Cnf, Lit, Model, Var};
pub use dpll::{SatResult, SolveStats};
pub use heuristics::{Heuristic, SatSpecParseError};
pub use program::{DpllProgram, Polarity, SubProblem, Verdict};
pub use simplify::{Simplified, SimplifyMode};
