//! Listing 2, verbatim: the message-passing implementation of
//! `sum(n) = n + sum(n-1)` written directly against the layer-3 ticket
//! interface, plus invariants of the mapping layer itself.

use std::collections::HashMap;

use hyperspace_mapping::{
    CallCtx, LeastBusyMapper, MapConfig, MappingHost, RandomMapper, RoundRobinMapper, Ticket,
    TicketHandler,
};
use hyperspace_sim::{NodeId, RunOutcome, SimConfig, Simulation};
use hyperspace_topology::{Hypercube, Torus};

/// The `Continue(ticket, n)` bookkeeping of Listing 2 lines 6–7.
#[derive(Default)]
struct SumState {
    records: HashMap<Ticket, (Ticket, u64)>,
}

struct SumHandler;

impl TicketHandler for SumHandler {
    type Req = u64;
    type Resp = u64;
    type State = SumState;

    fn init(&self, _node: NodeId) -> SumState {
        SumState::default()
    }

    fn on_request(
        &self,
        state: &mut SumState,
        n: u64,
        reply_to: Ticket,
        ctx: &mut dyn CallCtx<u64, u64>,
    ) {
        if n < 1 {
            // Base case: Result(0), quoting the incoming ticket (line 4).
            ctx.reply(reply_to, 0);
        } else {
            // Subcall for sum(n-1); remember the parent ticket and n
            // (lines 6–7).
            let t = ctx.call(n - 1);
            state.records.insert(t, (reply_to, n));
        }
    }

    fn on_reply(
        &self,
        state: &mut SumState,
        ticket: Ticket,
        total: u64,
        ctx: &mut dyn CallCtx<u64, u64>,
    ) {
        // Result(total + n) to the stored parent ticket (lines 8–10).
        let (parent, n) = state
            .records
            .remove(&ticket)
            .expect("reply quotes an unknown ticket");
        ctx.reply(parent, total + n);
    }
}

fn run_sum<F: hyperspace_mapping::MapperFactory>(
    n: u64,
    factory: F,
    topo: Torus,
) -> (u64, u64, RunOutcome) {
    let host = MappingHost::new(SumHandler, factory, MapConfig::default());
    let trigger = hyperspace_mapping::trigger(n);
    let mut sim = Simulation::new(topo, host, SimConfig::default());
    sim.inject(0, trigger);
    let report = sim.run_to_quiescence().unwrap();
    let result = *sim
        .state(0)
        .root_result()
        .expect("root reply must reach the triggering node");
    (result, report.computation_time, report.outcome)
}

#[test]
fn sum_10_equals_55_round_robin() {
    let (result, _, outcome) = run_sum(10, RoundRobinMapper::factory(), Torus::new_2d(4, 4));
    assert_eq!(result, 55);
    assert_eq!(outcome, RunOutcome::Halted);
}

#[test]
fn sum_10_equals_55_least_busy() {
    let (result, ..) = run_sum(10, LeastBusyMapper::factory(), Torus::new_2d(4, 4));
    assert_eq!(result, 55);
}

#[test]
fn sum_10_equals_55_random() {
    let (result, ..) = run_sum(10, RandomMapper::factory(99), Torus::new_2d(4, 4));
    assert_eq!(result, 55);
}

#[test]
fn sum_chain_takes_two_steps_per_level() {
    // Each recursion level costs one step for the call hop and (on the way
    // back) one for the reply hop, plus trigger handling: the linear chain
    // of Listing 2 cannot parallelise, so computation time grows ~2n.
    let (result, time, _) = run_sum(20, RoundRobinMapper::factory(), Torus::new_2d(8, 8));
    assert_eq!(result, 210);
    assert!(
        (2 * 20..=2 * 20 + 4).contains(&time),
        "expected ~42 steps, got {time}"
    );
}

#[test]
fn sum_on_hypercube() {
    let host = MappingHost::new(
        SumHandler,
        RoundRobinMapper::factory(),
        MapConfig::default(),
    );
    let mut sim = Simulation::new(Hypercube::new(4), host, SimConfig::default());
    sim.inject(5, hyperspace_mapping::trigger(12));
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.state(5).root_result(), Some(&78));
}

#[test]
fn every_request_gets_exactly_one_reply() {
    let host = MappingHost::new(
        SumHandler,
        RoundRobinMapper::factory(),
        MapConfig {
            halt_on_root_reply: false, // run to true quiescence
            ..MapConfig::default()
        },
    );
    let mut sim = Simulation::new(Torus::new_2d(4, 4), host, SimConfig::default());
    sim.inject(3, hyperspace_mapping::trigger(30));
    let report = sim.run_to_quiescence().unwrap();
    assert_eq!(report.outcome, RunOutcome::Quiescent);
    let requests: u64 = (0..16).map(|n| sim.state(n).requests_in).sum();
    let replies: u64 = (0..16).map(|n| sim.state(n).replies_in).sum();
    let calls: u64 = (0..16).map(|n| sim.state(n).calls_out).sum();
    assert_eq!(requests, calls, "every issued call is serviced");
    assert_eq!(replies, calls, "every call is answered exactly once");
    // 31 calls for sum(30): n = 30..=0.
    assert_eq!(calls, 31);
    // No dangling continuation records anywhere.
    assert!((0..16).all(|n| sim.state(n).app.records.is_empty()));
}

#[test]
fn least_busy_spreads_work_more_evenly_than_round_robin() {
    // Launch many roots at once from every node; compare the spread of
    // per-node deliveries. LBN reacts to congestion, RR does not.
    fn spread<F: hyperspace_mapping::MapperFactory>(factory: F) -> f64 {
        let host = MappingHost::new(
            SumHandler,
            factory,
            MapConfig {
                halt_on_root_reply: false,
                ..MapConfig::default()
            },
        );
        let mut sim = Simulation::new(Torus::new_2d(8, 8), host, SimConfig::default());
        for root in 0..8u32 {
            sim.inject(root * 8, hyperspace_mapping::trigger(40));
        }
        sim.run_to_quiescence().unwrap();
        sim.metrics().heatmap(8, 8).spread()
    }
    let rr = spread(RoundRobinMapper::factory());
    let lbn = spread(LeastBusyMapper::factory());
    // Eight simultaneous root chains: the adaptive mapper steers work away
    // from busy neighbours, so its per-node activity is visibly flatter
    // than static round robin's.
    assert!(
        lbn < rr,
        "least-busy should spread more evenly: rr={rr:.3} lbn={lbn:.3}"
    );
    assert!(lbn < 1.0, "least-busy spread unexpectedly skewed: {lbn:.3}");
}

#[test]
fn status_broadcasts_cost_messages() {
    // Note: with periodic status broadcasts the machine never goes fully
    // quiescent, so the run must end via halt_on_root_reply.
    let host = MappingHost::new(
        SumHandler,
        LeastBusyMapper::factory(),
        MapConfig {
            status_period: Some(4),
            halt_on_root_reply: true,
        },
    );
    let tick = host.recommended_tick();
    let mut sim = Simulation::new(
        Torus::new_2d(4, 4),
        host,
        SimConfig {
            tick_every: tick,
            ..SimConfig::default()
        },
    );
    sim.inject(0, hyperspace_mapping::trigger(10));
    sim.run_to_quiescence().unwrap();
    let status_total: u64 = (0..16).map(|n| sim.state(n).status_in).sum();
    assert!(status_total > 0, "status broadcasts should circulate");
    // Status messages inflate total traffic beyond the bare computation.
    assert!(sim.metrics().total_sent > 2 * 11);
}
