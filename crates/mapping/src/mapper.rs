//! Mapping algorithms: where does the next sub-problem go?
//!
//! §V-D classifies mappers as *static* (behaviour fixed a-priori) or
//! *adaptive* (influenced by runtime activity). The paper evaluates one of
//! each — round-robin and least-busy-neighbour — which are implemented
//! here together with a random static baseline and a hint-aware mapper
//! demonstrating §III-B3's cross-layer optimisation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::msg::Weight;
use hyperspace_topology::NodeId;

/// Destination chosen by a mapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Evaluate the sub-problem on this node itself.
    Local,
    /// Ship the sub-problem through the given local port.
    Port(usize),
    /// Ship the sub-problem to an arbitrary node. Requires a delivery
    /// model that can reach non-neighbours (`Routed` — the virtualised
    /// any-to-any fabric SpiNNaker's NoC provides, §II-A — or `Direct`).
    Node(NodeId),
}

/// What a mapper can see when choosing a destination.
#[derive(Clone, Copy, Debug)]
pub struct MapView {
    /// Number of outgoing ports (node degree).
    pub degree: usize,
    /// Total number of nodes in the machine (for global mappers).
    pub num_nodes: usize,
    /// This node's own total received-message count.
    pub local_load: u64,
    /// The application's size hint for the call being mapped (0 = none).
    pub hint: Weight,
}

/// A per-node mapping policy.
///
/// One mapper instance exists per node (created by a [`MapperFactory`]); it
/// accumulates whatever state its policy needs. `observe` is fed the
/// piggy-backed load of every incoming message, tagged with the arrival
/// port (§V-D(2): "maintain a record of neighbouring node counts").
pub trait Mapper: Send {
    /// Chooses the destination for a new sub-problem.
    fn choose(&mut self, view: &MapView) -> Target;

    /// Records a neighbour's piggy-backed load estimate.
    fn observe(&mut self, _port: usize, _load: u64) {}

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Boxed mappers forward, enabling heterogeneous mapper selection at
/// runtime (the experiment harness switches policies via configuration).
impl Mapper for Box<dyn Mapper> {
    fn choose(&mut self, view: &MapView) -> Target {
        (**self).choose(view)
    }
    fn observe(&mut self, port: usize, load: u64) {
        (**self).observe(port, load)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Creates the per-node mapper instances.
pub trait MapperFactory: Sync {
    /// The mapper type produced.
    type M: Mapper;
    /// Builds the mapper for `node` with the given degree.
    fn build(&self, node: NodeId, degree: usize) -> Self::M;
}

/// Any `Fn(NodeId, usize) -> M` is a factory.
impl<M: Mapper, F: Fn(NodeId, usize) -> M + Sync> MapperFactory for F {
    type M = M;
    fn build(&self, node: NodeId, degree: usize) -> M {
        self(node, degree)
    }
}

// ---------------------------------------------------------------------------
// Round robin (static)
// ---------------------------------------------------------------------------

/// §V-D(1): "map sub-problems to adjacent cores in circular order".
#[derive(Clone, Debug, Default)]
pub struct RoundRobinMapper {
    next: usize,
}

impl RoundRobinMapper {
    /// A fresh round-robin mapper starting at port 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A mapper whose cursor starts at `start` (modulo degree).
    pub fn starting_at(start: usize) -> Self {
        RoundRobinMapper { next: start }
    }

    /// A factory producing one per node, with each node's cursor offset by
    /// its id. Without the offset, machines whose port tables are globally
    /// aligned (most extremely the fully connected machine, where port 0
    /// of *every* node leads to node 0) would stampede their first
    /// sub-call onto a single victim.
    pub fn factory() -> impl MapperFactory<M = Self> {
        |node: NodeId, degree: usize| RoundRobinMapper::starting_at(node as usize % degree.max(1))
    }
}

impl Mapper for RoundRobinMapper {
    fn choose(&mut self, view: &MapView) -> Target {
        debug_assert!(view.degree > 0);
        let port = self.next % view.degree;
        self.next = (self.next + 1) % view.degree;
        Target::Port(port)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

// ---------------------------------------------------------------------------
// Least busy neighbour (adaptive)
// ---------------------------------------------------------------------------

/// §V-D(2): "Map sub-problems to neighbour with the smallest count."
///
/// The count is each neighbour's total received messages, learnt from the
/// piggy-back channel (and from status broadcasts when enabled). Ties are
/// broken by a rotating cursor so that an uninformed mapper (all counts
/// equal, e.g. at start-up) degrades to round-robin rather than hammering
/// port 0.
#[derive(Clone, Debug)]
pub struct LeastBusyMapper {
    counts: Vec<u64>,
    tie_cursor: usize,
}

impl LeastBusyMapper {
    /// A mapper for a node of the given degree, all counts zero.
    pub fn new(degree: usize) -> Self {
        LeastBusyMapper {
            counts: vec![0; degree],
            tie_cursor: 0,
        }
    }

    /// Like [`LeastBusyMapper::new`] with the tie-break cursor offset (see
    /// [`RoundRobinMapper::factory`] for why).
    pub fn with_cursor(degree: usize, start: usize) -> Self {
        LeastBusyMapper {
            counts: vec![0; degree],
            tie_cursor: start % degree.max(1),
        }
    }

    /// A factory producing one per node, cursor offset by node id.
    pub fn factory() -> impl MapperFactory<M = Self> {
        |node: NodeId, degree: usize| LeastBusyMapper::with_cursor(degree, node as usize)
    }

    /// The current per-port load estimates.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

impl Mapper for LeastBusyMapper {
    fn choose(&mut self, view: &MapView) -> Target {
        debug_assert_eq!(self.counts.len(), view.degree);
        let min = *self.counts.iter().min().expect("degree > 0");
        // Rotating tie-break among minimal ports.
        let d = view.degree;
        for off in 0..d {
            let port = (self.tie_cursor + off) % d;
            if self.counts[port] == min {
                self.tie_cursor = (port + 1) % d;
                return Target::Port(port);
            }
        }
        unreachable!("a minimal port always exists");
    }

    fn observe(&mut self, port: usize, load: u64) {
        if port < self.counts.len() {
            // Counts are monotone; keep the freshest (largest) estimate.
            self.counts[port] = self.counts[port].max(load);
        }
    }

    fn name(&self) -> &'static str {
        "least-busy"
    }
}

// ---------------------------------------------------------------------------
// Random (static baseline)
// ---------------------------------------------------------------------------

/// Maps each sub-problem to a uniformly random port. Deterministic per
/// node via a seeded [`SmallRng`].
#[derive(Clone, Debug)]
pub struct RandomMapper {
    rng: SmallRng,
}

impl RandomMapper {
    /// A mapper seeded from `seed` (typically mixed with the node id).
    pub fn new(seed: u64) -> Self {
        RandomMapper {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A factory giving each node an independent deterministic stream.
    pub fn factory(seed: u64) -> impl MapperFactory<M = Self> {
        move |node: NodeId, _degree: usize| {
            RandomMapper::new(seed ^ ((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }
    }
}

impl Mapper for RandomMapper {
    fn choose(&mut self, view: &MapView) -> Target {
        Target::Port(self.rng.gen_range(0..view.degree))
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

// ---------------------------------------------------------------------------
// Global random (static, requires routed delivery)
// ---------------------------------------------------------------------------

/// Maps each sub-problem to a uniformly random node *anywhere* in the
/// machine — the "send to any core" policy a virtualised any-to-any fabric
/// permits (paper §II-A on SpiNNaker: "the underlying communication
/// infrastructure permits arbitrary topologies to be virtualised").
///
/// Only usable with `DeliveryModel::Routed` (messages travel hop-by-hop
/// through the mesh NoC) or `Direct`; the adjacent-only model rejects its
/// choices.
#[derive(Clone, Debug)]
pub struct GlobalRandomMapper {
    rng: SmallRng,
}

impl GlobalRandomMapper {
    /// A mapper seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        GlobalRandomMapper {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A factory giving each node an independent deterministic stream.
    pub fn factory(seed: u64) -> impl MapperFactory<M = Self> {
        move |node: NodeId, _degree: usize| {
            GlobalRandomMapper::new(seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }
}

impl Mapper for GlobalRandomMapper {
    fn choose(&mut self, view: &MapView) -> Target {
        Target::Node(self.rng.gen_range(0..view.num_nodes as NodeId))
    }

    fn name(&self) -> &'static str {
        "global-random"
    }
}

// ---------------------------------------------------------------------------
// Weight-aware (adaptive + cross-layer hints, §III-B3)
// ---------------------------------------------------------------------------

/// Uses the application's sub-problem size hints: work *lighter* than
/// `local_threshold` is kept on the local node (spawning it remotely would
/// cost more interconnect traffic than the work is worth); heavier work is
/// delegated to the least busy neighbour.
///
/// This implements §III-B3's example: "Mapping algorithms can exploit such
/// knowledge to further optimize load balancing across the mesh (e.g. by
/// delegating larger sub-problems to less utilized sub-regions)".
#[derive(Clone, Debug)]
pub struct WeightAwareMapper {
    inner: LeastBusyMapper,
    local_threshold: Weight,
}

impl WeightAwareMapper {
    /// Builds with the given keep-local threshold.
    pub fn new(degree: usize, local_threshold: Weight) -> Self {
        WeightAwareMapper {
            inner: LeastBusyMapper::new(degree),
            local_threshold,
        }
    }

    /// A factory producing one per node.
    pub fn factory(local_threshold: Weight) -> impl MapperFactory<M = Self> {
        move |_node: NodeId, degree: usize| WeightAwareMapper::new(degree, local_threshold)
    }
}

impl Mapper for WeightAwareMapper {
    fn choose(&mut self, view: &MapView) -> Target {
        if view.hint != 0 && view.hint < self.local_threshold {
            Target::Local
        } else {
            self.inner.choose(view)
        }
    }

    fn observe(&mut self, port: usize, load: u64) {
        self.inner.observe(port, load);
    }

    fn name(&self) -> &'static str {
        "weight-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(degree: usize) -> MapView {
        MapView {
            degree,
            num_nodes: 64,
            local_load: 0,
            hint: 0,
        }
    }

    #[test]
    fn round_robin_cycles_ports() {
        let mut m = RoundRobinMapper::new();
        let order: Vec<Target> = (0..6).map(|_| m.choose(&view(4))).collect();
        assert_eq!(order, [0, 1, 2, 3, 0, 1].map(Target::Port).to_vec());
    }

    #[test]
    fn least_busy_prefers_smallest_count() {
        let mut m = LeastBusyMapper::new(4);
        m.observe(0, 10);
        m.observe(1, 3);
        m.observe(2, 7);
        m.observe(3, 9);
        assert_eq!(m.choose(&view(4)), Target::Port(1));
    }

    #[test]
    fn least_busy_tie_break_rotates() {
        let mut m = LeastBusyMapper::new(3);
        // All zero: choices rotate like round-robin.
        let order: Vec<Target> = (0..5).map(|_| m.choose(&view(3))).collect();
        assert_eq!(order, [0, 1, 2, 0, 1].map(Target::Port).to_vec());
    }

    #[test]
    fn least_busy_keeps_freshest_estimate() {
        let mut m = LeastBusyMapper::new(2);
        m.observe(0, 5);
        m.observe(0, 3); // stale (smaller) update must not regress the count
        assert_eq!(m.counts(), &[5, 0]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed| -> Vec<Target> {
            let mut m = RandomMapper::new(seed);
            (0..16).map(|_| m.choose(&view(4))).collect()
        };
        assert_eq!(picks(42), picks(42));
        assert_ne!(picks(42), picks(43));
        // All picks are valid ports.
        for t in picks(7) {
            match t {
                Target::Port(p) => assert!(p < 4),
                other => panic!("random mapper only picks ports, got {other:?}"),
            }
        }
    }

    #[test]
    fn global_random_targets_arbitrary_nodes() {
        let mut m = GlobalRandomMapper::new(5);
        let mut seen_far = false;
        for _ in 0..64 {
            match m.choose(&view(4)) {
                Target::Node(n) => {
                    assert!(n < 64);
                    if n > 4 {
                        seen_far = true;
                    }
                }
                other => panic!("global mapper only picks nodes, got {other:?}"),
            }
        }
        assert!(seen_far, "64 draws should reach beyond the neighbourhood");
        // Determinism per seed.
        let picks = |seed| -> Vec<Target> {
            let mut m = GlobalRandomMapper::new(seed);
            (0..8).map(|_| m.choose(&view(4))).collect()
        };
        assert_eq!(picks(9), picks(9));
    }

    #[test]
    fn weight_aware_keeps_small_work_local() {
        let mut m = WeightAwareMapper::new(4, 5);
        let v = |hint| MapView {
            degree: 4,
            num_nodes: 64,
            local_load: 0,
            hint,
        };
        assert_eq!(m.choose(&v(2)), Target::Local);
        assert!(matches!(m.choose(&v(9)), Target::Port(_)));
        // Hint 0 (no estimate) is treated as heavy: delegate.
        assert!(matches!(m.choose(&v(0)), Target::Port(_)));
    }

    #[test]
    fn factories_build_per_node_instances() {
        let f = LeastBusyMapper::factory();
        let a = f.build(0, 4);
        let b = f.build(1, 6);
        assert_eq!(a.counts().len(), 4);
        assert_eq!(b.counts().len(), 6);
    }
}
