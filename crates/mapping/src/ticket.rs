//! Tickets: the layer-3 replacement for sender identities (§IV-B).
//!
//! "We introduce a slightly modified receive handler that replaces sender
//! identity with a unique identifier (a ticket) that can be quoted to send
//! reply messages."

use hyperspace_topology::NodeId;

/// A globally unique call identifier.
///
/// The high 32 bits are the issuing node's id and the low 32 bits a
/// per-node counter, so tickets are unique machine-wide without any global
/// coordination, and a reply can always be routed: it goes to
/// [`Ticket::node`]. (Because sub-problems are only ever mapped to
/// neighbours, the issuing node is always adjacent to the replier.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// Builds a ticket from an issuing node and a per-node serial number.
    #[inline]
    pub fn new(node: NodeId, serial: u32) -> Self {
        Ticket(((node as u64) << 32) | serial as u64)
    }

    /// The node that issued this ticket (where the reply must go).
    #[inline]
    pub fn node(self) -> NodeId {
        (self.0 >> 32) as NodeId
    }

    /// The issuing node's serial number.
    #[inline]
    pub fn serial(self) -> u32 {
        self.0 as u32
    }

    /// The raw 64-bit representation.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}#{}", self.node(), self.serial())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Ticket::new(196, 12345);
        assert_eq!(t.node(), 196);
        assert_eq!(t.serial(), 12345);
        assert_eq!(Ticket::new(t.node(), t.serial()), t);
    }

    #[test]
    fn uniqueness_across_nodes_and_serials() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for node in 0..50 {
            for serial in 0..50 {
                assert!(seen.insert(Ticket::new(node, serial).raw()));
            }
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Ticket::new(3, 7).to_string(), "t3#7");
    }

    #[test]
    fn extreme_values() {
        let t = Ticket::new(u32::MAX, u32::MAX);
        assert_eq!(t.node(), u32::MAX);
        assert_eq!(t.serial(), u32::MAX);
    }
}
