//! **Layer 3 — Mapping** (paper §III-A3, §IV-B).
//!
//! This layer is "responsible for balancing work across the mesh". It
//! "prevents communication between arbitrary nodes and instead allows the
//! application to request that a message be delivered without specifying
//! its destination. The destination is then chosen based on estimated
//! activity levels in subregions of the mesh."
//!
//! Concretely:
//!
//! * applications implement [`TicketHandler`]: requests arrive with a
//!   [`Ticket`] instead of a sender identity, and replies quote tickets
//!   (§IV-B's modified `receive` handler);
//! * new sub-problems are issued with [`CallCtx::call`], whose destination
//!   is chosen by a pluggable [`Mapper`]:
//!   [`RoundRobinMapper`] (static, the paper's RR), [`LeastBusyMapper`]
//!   (adaptive, the paper's least-busy-neighbour), [`RandomMapper`]
//!   (static baseline) and [`WeightAwareMapper`] (cross-layer hints,
//!   §III-B3);
//! * every outgoing message piggy-backs the sender's total received count,
//!   which is the activity estimate least-busy-neighbour feeds on (§V-D);
//!   optionally nodes broadcast periodic `Status` messages, whose
//!   interconnect cost is the adaptive-mapping overhead visible below ~100
//!   cores in Figure 4.

#![warn(missing_docs)]

mod host;
mod mapper;
mod msg;
mod ticket;

pub use host::{bound, trigger, CallCtx, MapConfig, MapState, MappingHost, TicketHandler};
pub use mapper::{
    GlobalRandomMapper, LeastBusyMapper, MapView, Mapper, MapperFactory, RandomMapper,
    RoundRobinMapper, Target, WeightAwareMapper,
};
pub use msg::{MapMsg, MapPayload, Weight};
pub use ticket::Ticket;
