//! [`MappingHost`]: the layer-1 program implementing ticketed,
//! destination-less message passing (§IV-B).

use std::collections::HashSet;

use hyperspace_sim::{InitCtx, NodeId, NodeProgram, Outbox};

use crate::mapper::{MapView, Mapper, MapperFactory, Target};
use crate::msg::{MapMsg, MapPayload, Weight};
use crate::ticket::Ticket;

/// An application written against layer 3 (§IV-B's programming style).
///
/// Handlers never see node identities: requests arrive with the ticket to
/// quote when replying, and results of this node's own calls return through
/// [`TicketHandler::on_reply`] identified by the ticket [`CallCtx::call`]
/// returned.
pub trait TicketHandler: Sync {
    /// Request (sub-problem) payload.
    type Req: Clone + Send;
    /// Response (result) payload.
    type Resp: Clone + Send;
    /// Per-node application state.
    type State: Send;

    /// Initial application state of `node`.
    fn init(&self, node: NodeId) -> Self::State;

    /// Services a request; must eventually cause exactly one
    /// `ctx.reply(reply_to, ...)` (possibly only after further calls
    /// return).
    fn on_request(
        &self,
        state: &mut Self::State,
        req: Self::Req,
        reply_to: Ticket,
        ctx: &mut dyn CallCtx<Self::Req, Self::Resp>,
    );

    /// Receives the result of a call this node made earlier.
    fn on_reply(
        &self,
        state: &mut Self::State,
        ticket: Ticket,
        resp: Self::Resp,
        ctx: &mut dyn CallCtx<Self::Req, Self::Resp>,
    );

    /// A caller withdrew the request it had issued with `reply_to`; the
    /// application should abandon the corresponding work (and cancel its
    /// own outstanding sub-calls). Default: ignore, matching the paper's
    /// "remaining evaluations are ignored" baseline.
    fn on_cancel(
        &self,
        _state: &mut Self::State,
        _reply_to: Ticket,
        _ctx: &mut dyn CallCtx<Self::Req, Self::Resp>,
    ) {
    }

    /// An incumbent-bound update arrived from a neighbour (branch-and-
    /// bound optimisation mode). Default: ignore — only optimisation
    /// hosts react.
    fn on_bound(
        &self,
        _state: &mut Self::State,
        _value: i64,
        _ctx: &mut dyn CallCtx<Self::Req, Self::Resp>,
    ) {
    }
}

/// The call/reply interface layer 3 exposes upwards.
pub trait CallCtx<Q, R> {
    /// Issues a sub-problem without naming a destination; layer 3 picks one
    /// (§III-A3). Returns the ticket its reply will quote.
    fn call(&mut self, req: Q) -> Ticket {
        self.call_hint(req, 0)
    }

    /// Like [`CallCtx::call`] with a cross-layer size hint (§III-B3).
    fn call_hint(&mut self, req: Q, hint: Weight) -> Ticket;

    /// Sends the result for a serviced request back to its caller.
    fn reply(&mut self, ticket: Ticket, resp: R);

    /// Withdraws a previously issued call. Layer 3 routes the cancel to
    /// the node the request was mapped to; a straggling reply that crosses
    /// the cancel in flight is delivered anyway and must be tolerated.
    fn cancel(&mut self, ticket: Ticket);

    /// Broadcasts an incumbent-bound update to every neighbour. The
    /// bounds ride the ordinary envelope machinery (port sends staged
    /// this step, delivered next step), so their arrival order — and
    /// therefore every pruning decision keyed on it — is deterministic
    /// and backend-independent.
    fn share_bound(&mut self, value: i64);

    /// Current simulation step (diagnostics).
    fn step(&self) -> u64;

    /// Requests the whole run to halt at the end of this step.
    fn halt(&mut self);
}

/// Layer-3 behaviour switches.
#[derive(Clone, Debug)]
pub struct MapConfig {
    /// Broadcast a `Status` message to every neighbour each `p` steps.
    /// Requires the engine's `tick_every = Some(p)` (see
    /// [`MappingHost::recommended_tick`]). These broadcasts refresh
    /// adaptive mappers' estimates but *cost interconnect capacity* — the
    /// §III-B2 overhead that makes adaptive mapping a net loss on small
    /// meshes (Figure 4, < 100 cores).
    pub status_period: Option<u64>,
    /// Halt the simulation when a root reply arrives (computation time is
    /// then "trigger to root result", the quantity Figure 4 plots).
    pub halt_on_root_reply: bool,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            status_period: None,
            halt_on_root_reply: true,
        }
    }
}

/// Full per-node state of the mapping layer.
pub struct MapState<H: TicketHandler, M> {
    /// Application state.
    pub app: H::State,
    mapper: M,
    received: u64,
    next_serial: u32,
    root_tickets: HashSet<u64>,
    /// Where each outstanding ticket's request was mapped (for cancels).
    ticket_dst: std::collections::HashMap<u64, NodeId>,
    /// Results of root calls triggered on this node.
    pub root_results: Vec<(Ticket, H::Resp)>,
    /// Requests serviced by this node.
    pub requests_in: u64,
    /// Replies received by this node.
    pub replies_in: u64,
    /// Status broadcasts received by this node.
    pub status_in: u64,
    /// Cancels received by this node.
    pub cancels_in: u64,
    /// Incumbent-bound updates received by this node.
    pub bounds_in: u64,
    /// Calls issued by this node.
    pub calls_out: u64,
}

impl<H: TicketHandler, M: Mapper> MapState<H, M> {
    /// Total messages this node has received (the LBN activity metric).
    pub fn received(&self) -> u64 {
        self.received
    }

    /// The mapper's current state (e.g. for inspecting LBN counts).
    pub fn mapper(&self) -> &M {
        &self.mapper
    }

    /// First root result, if any arrived.
    pub fn root_result(&self) -> Option<&H::Resp> {
        self.root_results.first().map(|(_, r)| r)
    }
}

/// Concrete [`CallCtx`] bound to a node's outbox and mapper.
struct HostCtx<'a, 'b, Q, R, M: Mapper> {
    outbox: &'a mut Outbox<'b, MapMsg<Q, R>>,
    mapper: &'a mut M,
    received: u64,
    next_serial: &'a mut u32,
    node: NodeId,
    calls_issued: &'a mut u64,
    ticket_dst: &'a mut std::collections::HashMap<u64, NodeId>,
}

impl<'a, 'b, Q: Clone + Send, R: Clone + Send, M: Mapper> CallCtx<Q, R>
    for HostCtx<'a, 'b, Q, R, M>
{
    fn call_hint(&mut self, req: Q, hint: Weight) -> Ticket {
        let ticket = Ticket::new(self.node, *self.next_serial);
        *self.next_serial += 1;
        *self.calls_issued += 1;
        let view = MapView {
            degree: self.outbox.degree(),
            num_nodes: self.outbox.num_nodes(),
            local_load: self.received,
            hint,
        };
        let dst = match self.mapper.choose(&view) {
            Target::Local => self.node,
            Target::Port(p) => self.outbox.neighbour(p),
            Target::Node(n) => n,
        };
        self.ticket_dst.insert(ticket.raw(), dst);
        self.outbox.send(
            dst,
            MapMsg {
                load: self.received,
                payload: MapPayload::Request { ticket, hint, req },
            },
        );
        ticket
    }

    fn cancel(&mut self, ticket: Ticket) {
        if let Some(dst) = self.ticket_dst.remove(&ticket.raw()) {
            self.outbox.send(
                dst,
                MapMsg {
                    load: self.received,
                    payload: MapPayload::Cancel { ticket },
                },
            );
        }
    }

    fn share_bound(&mut self, value: i64) {
        for port in 0..self.outbox.degree() {
            self.outbox.send_port(
                port,
                MapMsg {
                    load: self.received,
                    payload: MapPayload::Bound { value },
                },
            );
        }
    }

    fn reply(&mut self, ticket: Ticket, resp: R) {
        self.outbox.send(
            ticket.node(),
            MapMsg {
                load: self.received,
                payload: MapPayload::Reply { ticket, resp },
            },
        );
    }

    fn step(&self) -> u64 {
        self.outbox.step()
    }

    fn halt(&mut self) {
        self.outbox.halt();
    }
}

/// Builds the message to inject to kick off a root call at some node
/// (§IV-B's `Trigger`).
pub fn trigger<Q, R>(req: Q) -> MapMsg<Q, R> {
    MapMsg {
        load: 0,
        payload: MapPayload::Trigger { req },
    }
}

/// Builds an externally sourced incumbent-bound message, injectable into
/// any node the way [`trigger`] messages are. The receiving node treats
/// it exactly like a gossiped [`MapPayload::Bound`]: it merges the value
/// into its incumbent and re-broadcasts on strict improvement, flooding
/// the mesh. This is how a portfolio coordinator feeds one member's
/// incumbent to another at a sync epoch.
pub fn bound<Q, R>(value: i64) -> MapMsg<Q, R> {
    MapMsg {
        load: 0,
        payload: MapPayload::Bound { value },
    }
}

/// The layer-3 host: owns the per-node mapper and ticket bookkeeping and
/// drives a [`TicketHandler`].
pub struct MappingHost<H, F> {
    handler: H,
    factory: F,
    cfg: MapConfig,
}

impl<H, F> MappingHost<H, F>
where
    H: TicketHandler,
    F: MapperFactory,
{
    /// Builds a host with the given application handler and mapper factory.
    pub fn new(handler: H, factory: F, cfg: MapConfig) -> Self {
        MappingHost {
            handler,
            factory,
            cfg,
        }
    }

    /// Engine `tick_every` needed for this host's status broadcasts.
    pub fn recommended_tick(&self) -> Option<u64> {
        self.cfg.status_period
    }

    /// The application handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }
}

impl<H, F> NodeProgram for MappingHost<H, F>
where
    H: TicketHandler,
    F: MapperFactory,
{
    type Msg = MapMsg<H::Req, H::Resp>;
    type State = MapState<H, F::M>;

    fn init(&self, node: NodeId, ctx: &InitCtx) -> Self::State {
        assert!(
            ctx.degree() > 0,
            "mapping layer requires a connected topology (node {node} has degree 0)"
        );
        MapState {
            app: self.handler.init(node),
            mapper: self.factory.build(node, ctx.degree()),
            received: 0,
            next_serial: 0,
            root_tickets: HashSet::new(),
            ticket_dst: std::collections::HashMap::new(),
            root_results: Vec::new(),
            requests_in: 0,
            replies_in: 0,
            status_in: 0,
            cancels_in: 0,
            bounds_in: 0,
            calls_out: 0,
        }
    }

    fn on_message(
        &self,
        state: &mut Self::State,
        msg: MapMsg<H::Req, H::Resp>,
        outbox: &mut Outbox<'_, Self::Msg>,
    ) {
        let node = outbox.node();
        state.received += 1;
        // Feed the piggy-backed load estimate to the mapper; self-loopback
        // messages carry no new information.
        let sender = outbox.sender();
        if sender != node {
            if let Some(port) = outbox.neighbours().iter().position(|&n| n == sender) {
                state.mapper.observe(port, msg.load);
            }
        }

        macro_rules! ctx {
            () => {
                HostCtx {
                    outbox,
                    mapper: &mut state.mapper,
                    received: state.received,
                    next_serial: &mut state.next_serial,
                    node,
                    calls_issued: &mut state.calls_out,
                    ticket_dst: &mut state.ticket_dst,
                }
            };
        }

        match msg.payload {
            MapPayload::Status => {
                state.status_in += 1;
            }
            MapPayload::Request { ticket, req, .. } => {
                state.requests_in += 1;
                let mut ctx = ctx!();
                self.handler
                    .on_request(&mut state.app, req, ticket, &mut ctx);
            }
            MapPayload::Reply { ticket, resp } => {
                state.replies_in += 1;
                state.ticket_dst.remove(&ticket.raw());
                if state.root_tickets.remove(&ticket.raw()) {
                    state.root_results.push((ticket, resp));
                    if self.cfg.halt_on_root_reply {
                        outbox.halt();
                    }
                } else {
                    let mut ctx = ctx!();
                    self.handler
                        .on_reply(&mut state.app, ticket, resp, &mut ctx);
                }
            }
            MapPayload::Trigger { req } => {
                let mut ctx = ctx!();
                let ticket = ctx.call(req);
                state.root_tickets.insert(ticket.raw());
            }
            MapPayload::Cancel { ticket } => {
                state.cancels_in += 1;
                let mut ctx = ctx!();
                self.handler.on_cancel(&mut state.app, ticket, &mut ctx);
            }
            MapPayload::Bound { value } => {
                state.bounds_in += 1;
                let mut ctx = ctx!();
                self.handler.on_bound(&mut state.app, value, &mut ctx);
            }
        }
    }

    fn on_tick(&self, state: &mut Self::State, outbox: &mut Outbox<'_, Self::Msg>) {
        if let Some(period) = self.cfg.status_period {
            if period > 0 && outbox.step() % period == 0 {
                for port in 0..outbox.degree() {
                    outbox.send_port(
                        port,
                        MapMsg {
                            load: state.received,
                            payload: MapPayload::Status,
                        },
                    );
                }
            }
        }
    }
}
