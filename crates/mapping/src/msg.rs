//! Layer-3 wire format.

use crate::ticket::Ticket;

/// Cross-layer size hint attached to a call (§III-B3).
///
/// Solvers "often employ lazy evaluation functions to prune the search
/// space... This heuristic can serve as an estimate of sub-problem size".
/// The application layer may attach such an estimate to each call; hint-
/// aware mappers use it, all others ignore it. `0` means "no estimate".
pub type Weight = u32;

/// The kinds of layer-3 message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapPayload<Q, R> {
    /// A sub-problem to evaluate; the reply must quote `ticket`.
    Request {
        /// Reply ticket issued by the caller.
        ticket: Ticket,
        /// Cross-layer size hint (0 = none).
        hint: Weight,
        /// The sub-problem itself.
        req: Q,
    },
    /// A completed evaluation for the call identified by `ticket`.
    Reply {
        /// The quoted ticket.
        ticket: Ticket,
        /// The evaluation result.
        resp: R,
    },
    /// External kick-off: the receiving node issues the root call (§IV-B's
    /// `Trigger` message, Listing 2 line 13–14).
    Trigger {
        /// The root problem.
        req: Q,
    },
    /// Periodic activity broadcast used by adaptive mappers configured with
    /// a status period (§III-B2: "Status messages").
    Status,
    /// Withdraw an outstanding request (speculative-branch pruning). The
    /// ticket is the one the canceller issued with its original `Request`;
    /// layer 3 routes the cancel to wherever that request was mapped.
    Cancel {
        /// The ticket of the request being withdrawn.
        ticket: Ticket,
    },
    /// An incumbent-bound update (branch-and-bound optimisation mode):
    /// the sender found a feasible solution of this objective value.
    /// Bounds travel as ordinary envelopes — staged, merged and
    /// delivered inside the same deterministic machinery as every other
    /// message — so the incumbent a node holds at any step is identical
    /// across execution backends. Receivers that improve on the value
    /// re-broadcast it, flooding the mesh in O(diameter) steps.
    Bound {
        /// The feasible solution value being shared.
        value: i64,
    },
}

/// A layer-3 message: payload plus the piggy-backed load estimate.
///
/// §V-D(2): "Embed a count of total messages received in all outgoing
/// messages" — every message, of every kind, carries the sender's current
/// received-message count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapMsg<Q, R> {
    /// Sender's total received-message count at send time.
    pub load: u64,
    /// The message body.
    pub payload: MapPayload<Q, R>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_variants_clone() {
        let m: MapMsg<u32, u32> = MapMsg {
            load: 7,
            payload: MapPayload::Request {
                ticket: Ticket::new(1, 2),
                hint: 3,
                req: 10,
            },
        };
        assert_eq!(m.clone(), m);
        let s: MapMsg<u32, u32> = MapMsg {
            load: 0,
            payload: MapPayload::Status,
        };
        assert_eq!(s.clone().load, 0);
    }
}
