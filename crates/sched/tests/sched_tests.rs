//! Behavioural tests for the layer-2 scheduler.

use hyperspace_sched::{ProcAddr, ProcCtx, Process, SchedMsg, SchedPolicy, SchedulerHost};
use hyperspace_sim::{DeliveryModel, SimConfig, Simulation};
use hyperspace_topology::{FullyConnected, Ring, Torus};

/// A process that logs every message it services and optionally replies.
#[derive(Clone)]
struct Logger {
    log: Vec<u32>,
}

impl Process for Logger {
    type Msg = u32;
    fn on_message(&mut self, msg: u32, _ctx: &mut ProcCtx<'_, '_, '_, Self>) {
        self.log.push(msg);
    }
}

fn logger_factory(k: usize) -> impl Fn(u32, &hyperspace_sim::InitCtx) -> Vec<Logger> + Sync {
    move |_node, _ctx| (0..k).map(|_| Logger { log: Vec::new() }).collect()
}

#[test]
fn messages_reach_the_addressed_process() {
    let host = SchedulerHost::new(logger_factory(3), SchedPolicy::Fifo);
    let mut sim = Simulation::new(Ring::new(4), host, SimConfig::default());
    for proc in 0..3 {
        sim.inject(
            1,
            SchedMsg {
                src_proc: 0,
                dst_proc: proc,
                inner: 100 + proc,
            },
        );
    }
    sim.run_to_quiescence().unwrap();
    let sched = sim.state(1);
    for proc in 0..3u32 {
        assert_eq!(sched.process(proc).unwrap().log, vec![100 + proc]);
    }
    assert_eq!(sched.serviced, 3);
}

#[test]
fn messages_to_dead_processes_are_dropped() {
    /// Exits on the first message.
    struct OneShot;
    impl Process for OneShot {
        type Msg = u32;
        fn on_message(&mut self, _msg: u32, ctx: &mut ProcCtx<'_, '_, '_, Self>) {
            ctx.exit();
        }
    }
    let host = SchedulerHost::new(|_n, _c| vec![OneShot], SchedPolicy::Fifo);
    let mut sim = Simulation::new(Ring::new(3), host, SimConfig::default());
    sim.inject(
        0,
        SchedMsg {
            src_proc: 0,
            dst_proc: 0,
            inner: 1,
        },
    );
    sim.inject(
        0,
        SchedMsg {
            src_proc: 0,
            dst_proc: 0,
            inner: 2,
        },
    );
    sim.run_to_quiescence().unwrap();
    let sched = sim.state(0);
    assert_eq!(sched.live_processes(), 0);
    assert_eq!(sched.serviced, 1);
    assert_eq!(sched.dropped, 1);
}

#[test]
fn spawn_creates_addressable_processes() {
    /// Root process spawns a child and forwards the payload locally.
    struct Root {
        child_payload: u32,
    }
    impl Process for Root {
        type Msg = u32;
        fn on_message(&mut self, msg: u32, ctx: &mut ProcCtx<'_, '_, '_, Self>) {
            if ctx.self_addr().proc == 0 {
                let child = ctx.spawn(Root { child_payload: 0 });
                assert_eq!(child.proc, 1);
                ctx.send(child, msg * 2);
            } else {
                self.child_payload = msg;
            }
        }
    }
    let host = SchedulerHost::new(|_n, _c| vec![Root { child_payload: 0 }], SchedPolicy::Fifo);
    let mut sim = Simulation::new(Ring::new(3), host, SimConfig::default());
    sim.inject(
        2,
        SchedMsg {
            src_proc: 0,
            dst_proc: 0,
            inner: 21,
        },
    );
    sim.run_to_quiescence().unwrap();
    let sched = sim.state(2);
    assert_eq!(sched.live_processes(), 2);
    assert_eq!(sched.process(1).unwrap().child_payload, 42);
}

#[test]
fn remote_ping_pong_between_processes() {
    /// Bounces a counter between two processes on adjacent nodes.
    struct Ping {
        seen: Vec<u32>,
    }
    impl Process for Ping {
        type Msg = u32;
        fn on_message(&mut self, msg: u32, ctx: &mut ProcCtx<'_, '_, '_, Self>) {
            self.seen.push(msg);
            if msg > 0 {
                let peer = if ctx.node() == 0 {
                    ProcAddr::new(1, 0)
                } else {
                    ProcAddr::new(0, 0)
                };
                ctx.send(peer, msg - 1);
            }
        }
    }
    let host = SchedulerHost::new(|_n, _c| vec![Ping { seen: Vec::new() }], SchedPolicy::Fifo);
    let mut sim = Simulation::new(Ring::new(3), host, SimConfig::default());
    sim.inject(
        0,
        SchedMsg {
            src_proc: 0,
            dst_proc: 0,
            inner: 5,
        },
    );
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.state(0).process(0).unwrap().seen, vec![5, 3, 1]);
    assert_eq!(sim.state(1).process(0).unwrap().seen, vec![4, 2, 0]);
}

/// Builds a tick-driven host scenario where node 0's process mailboxes fill
/// faster than its service rate (all six messages arrive on step one, one
/// activation runs per tick), exposing the policy's choice order. Messages
/// arrive for processes in the order 2, 1, 0, 2, 1, 0.
fn service_order(policy: SchedPolicy) -> Vec<u32> {
    use std::sync::{Arc, Mutex};
    #[derive(Clone)]
    struct Shared {
        order: Arc<Mutex<Vec<u32>>>,
    }
    impl Process for Shared {
        type Msg = u32;
        fn on_message(&mut self, _msg: u32, ctx: &mut ProcCtx<'_, '_, '_, Self>) {
            self.order.lock().unwrap().push(ctx.self_addr().proc);
        }
    }
    let order = Arc::new(Mutex::new(Vec::new()));
    let order_clone = Arc::clone(&order);
    let host = SchedulerHost::new(
        move |_n, _c| {
            (0..3)
                .map(|_| Shared {
                    order: Arc::clone(&order_clone),
                })
                .collect()
        },
        policy,
    )
    .tick_driven(1);
    let cfg = host.recommended_sim_config();
    let mut sim = Simulation::new(
        FullyConnected::new(2),
        host,
        SimConfig {
            delivery: DeliveryModel::Direct,
            ..cfg
        },
    );
    for round in 0..2u32 {
        for proc in [2, 1, 0] {
            sim.inject(
                0,
                SchedMsg {
                    src_proc: 0,
                    dst_proc: proc,
                    inner: round,
                },
            )
        }
    }
    sim.run_to_quiescence().unwrap();
    let got = order.lock().unwrap().clone();
    got
}

#[test]
fn fifo_services_in_arrival_order() {
    assert_eq!(service_order(SchedPolicy::Fifo), vec![2, 1, 0, 2, 1, 0]);
}

#[test]
fn round_robin_alternates_processes() {
    assert_eq!(
        service_order(SchedPolicy::RoundRobin),
        vec![0, 1, 2, 0, 1, 2]
    );
}

#[test]
fn priority_drains_low_ids_first() {
    assert_eq!(service_order(SchedPolicy::Priority), vec![0, 0, 1, 1, 2, 2]);
}

#[test]
fn local_sends_cost_no_interconnect_traffic() {
    /// Process 0 relays through local process 1 before replying remotely.
    struct Relay;
    impl Process for Relay {
        type Msg = u32;
        fn on_message(&mut self, msg: u32, ctx: &mut ProcCtx<'_, '_, '_, Self>) {
            match ctx.self_addr().proc {
                0 if msg == 0 => {
                    // trigger: bounce through local proc 1 five times
                    ctx.send(ProcAddr::new(ctx.node(), 1), 5);
                }
                1 if msg > 1 => ctx.send(ProcAddr::new(ctx.node(), 1), msg - 1),
                _ => {}
            }
        }
    }
    let host = SchedulerHost::new(|_n, _c| vec![Relay, Relay], SchedPolicy::Fifo);
    let mut sim = Simulation::new(Torus::new_2d(4, 4), host, SimConfig::default());
    sim.inject(
        5,
        SchedMsg {
            src_proc: 0,
            dst_proc: 0,
            inner: 0,
        },
    );
    let report = sim.run_to_quiescence().unwrap();
    // The whole local cascade resolves within the trigger's step.
    assert_eq!(report.steps, 1);
    assert_eq!(sim.metrics().total_sent, 0);
    assert_eq!(sim.state(5).serviced, 6); // trigger + 5 local bounces
}
