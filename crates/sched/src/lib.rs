//! **Layer 2 — Scheduling** (paper §III-A2).
//!
//! This layer "maintains a number of concurrent processes that communicate
//! via the message passing functions provided by layer 1. Each process has a
//! state that is initialized at startup and then transformed by a handler
//! function when a message is received. The layer is responsible for
//! scheduling if processes are more numerous than hardware threads."
//!
//! [`SchedulerHost`] is a layer-1 [`hyperspace_sim::NodeProgram`] that multiplexes many
//! lightweight [`Process`]es onto each node. Messages address processes
//! through [`ProcAddr`] `(node, proc)` pairs; arriving messages are queued
//! in per-process mailboxes and *serviced* according to a [`SchedPolicy`]
//! — so arrival order and service order can differ, which is exactly the
//! scheduling freedom the paper assigns to this layer. Processes may spawn
//! further processes, exchange zero-cost local messages, and exit.
//!
//! The mapping and recursion layers above run as processes; applications
//! may also use this layer directly (e.g. the portfolio-solver example runs
//! several independent SAT solvers as competing processes per node).

#![warn(missing_docs)]

mod host;
mod policy;
mod process;

pub use host::{NodeSched, SchedMsg, SchedulerHost};
pub use policy::SchedPolicy;
pub use process::{ProcAddr, ProcCtx, Process};
