//! The process abstraction and its execution context.

use hyperspace_sim::{NodeId, Outbox};

use crate::host::{LocalAction, SchedMsg};

/// Global address of a process: node id plus node-local process id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcAddr {
    /// Hosting node.
    pub node: NodeId,
    /// Node-local process id (0 is the process the factory created first).
    pub proc: u32,
}

impl ProcAddr {
    /// Convenience constructor.
    pub fn new(node: NodeId, proc: u32) -> Self {
        ProcAddr { node, proc }
    }
}

impl std::fmt::Display for ProcAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.node, self.proc)
    }
}

/// A lightweight process scheduled by layer 2.
///
/// Each process owns its state (the `self` value) and reacts to messages;
/// there is no time-slicing because handlers are run-to-completion — the
/// scheduling freedom lies in *which* pending message is serviced next.
pub trait Process: Send {
    /// Message payload exchanged between processes.
    type Msg: Clone + Send;

    /// Handles one message addressed to this process.
    fn on_message(&mut self, msg: Self::Msg, ctx: &mut ProcCtx<'_, '_, '_, Self>);
}

/// Execution context of a process handler.
pub struct ProcCtx<'a, 'b, 'c, P: Process + ?Sized> {
    pub(crate) outbox: &'a mut Outbox<'b, SchedMsg<P::Msg>>,
    pub(crate) self_addr: ProcAddr,
    pub(crate) src: ProcAddr,
    pub(crate) actions: &'a mut Vec<LocalAction<P::Msg>>,
    pub(crate) spawned: &'c mut Vec<(u32, Box<P>)>,
    pub(crate) next_proc_id: &'a mut u32,
}

impl<'a, 'b, 'c, P: Process> ProcCtx<'a, 'b, 'c, P> {
    /// This process's global address.
    pub fn self_addr(&self) -> ProcAddr {
        self.self_addr
    }

    /// Address of the process that sent the message being handled.
    pub fn sender(&self) -> ProcAddr {
        self.src
    }

    /// Hosting node id.
    pub fn node(&self) -> NodeId {
        self.self_addr.node
    }

    /// Degree of the hosting node.
    pub fn degree(&self) -> usize {
        self.outbox.degree()
    }

    /// Neighbouring node reached through `port`.
    pub fn neighbour(&self, port: usize) -> NodeId {
        self.outbox.neighbour(port)
    }

    /// Neighbour list of the hosting node.
    pub fn neighbours(&self) -> &[NodeId] {
        self.outbox.neighbours()
    }

    /// Current simulation step.
    pub fn step(&self) -> u64 {
        self.outbox.step()
    }

    /// Sends `msg` to process `to`.
    ///
    /// Local destinations (same node) are delivered through the node's own
    /// mailboxes without generating layer-1 traffic; remote destinations
    /// must respect the mesh (adjacent-only under the paper's §V-A model).
    pub fn send(&mut self, to: ProcAddr, msg: P::Msg) {
        if to.node == self.self_addr.node {
            self.actions
                .push(LocalAction::Deliver(to.proc, self.self_addr, msg));
        } else {
            self.outbox.send(
                to.node,
                SchedMsg {
                    src_proc: self.self_addr.proc,
                    dst_proc: to.proc,
                    inner: msg,
                },
            );
        }
    }

    /// Replies to the sender of the current message.
    pub fn reply(&mut self, msg: P::Msg) {
        self.send(self.src, msg);
    }

    /// Spawns a new process on this node; returns its address. The process
    /// becomes schedulable at the end of the current handler.
    pub fn spawn(&mut self, process: P) -> ProcAddr {
        let id = *self.next_proc_id;
        *self.next_proc_id += 1;
        self.spawned.push((id, Box::new(process)));
        ProcAddr::new(self.self_addr.node, id)
    }

    /// Marks this process as finished; it is removed once the handler
    /// returns and any further messages addressed to it are dropped.
    pub fn exit(&mut self) {
        self.actions.push(LocalAction::Exit(self.self_addr.proc));
    }

    /// Requests the whole simulation to halt at the end of this step.
    pub fn halt(&mut self) {
        self.outbox.halt();
    }
}
