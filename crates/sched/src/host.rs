//! [`SchedulerHost`]: the layer-1 program that multiplexes processes.

use std::collections::VecDeque;
use std::marker::PhantomData;

use hyperspace_sim::{InitCtx, NodeId, NodeProgram, Outbox, SimConfig};

use crate::policy::SchedPolicy;
use crate::process::{ProcAddr, ProcCtx, Process};

/// Safety cap on process activations per host invocation; hitting it means
/// two local processes are ping-ponging messages without ever yielding,
/// which is a program bug (local livelock).
const LOCAL_ACTIVATION_CAP: u32 = 65_536;

/// Layer-1 payload carrying a process-addressed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedMsg<M> {
    /// Sending process id on the source node.
    pub src_proc: u32,
    /// Destination process id on the destination node.
    pub dst_proc: u32,
    /// Application payload.
    pub inner: M,
}

/// When the host services pending activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ServiceMode {
    /// Service one activation per delivered message — the paper's §V-A
    /// "pop one message per step" semantics. Arrival order dominates, so
    /// policies only affect backlog produced by local sends.
    #[default]
    ArrivalDriven,
    /// Only enqueue on delivery; service `service_budget` activations on
    /// each engine tick. Combine with an unbounded `msgs_per_step` and
    /// `tick_every = 1` (see [`SchedulerHost::recommended_sim_config`]) to
    /// model a node whose network interface outpaces its CPU — the regime
    /// where scheduling policy genuinely matters.
    TickDriven,
}

/// Node-local bookkeeping action recorded during a handler run and applied
/// when it returns.
pub(crate) enum LocalAction<M> {
    /// Deliver a message to a local mailbox.
    Deliver(u32, ProcAddr, M),
    /// Remove the process.
    Exit(u32),
}

/// Per-node scheduler state: the process table and mailboxes.
pub struct NodeSched<P: Process> {
    slots: Vec<Option<Box<P>>>,
    mailboxes: Vec<VecDeque<(ProcAddr, P::Msg)>>,
    /// Arrival-ordered queue of (proc, src, msg) used by the FIFO policy.
    fifo: VecDeque<(u32, ProcAddr, P::Msg)>,
    rr_cursor: usize,
    next_proc_id: u32,
    pending: usize,
    /// Messages dropped because their target process had exited.
    pub dropped: u64,
    /// Handler activations executed on this node.
    pub serviced: u64,
}

impl<P: Process> NodeSched<P> {
    fn new(initial: Vec<P>) -> Self {
        let n = initial.len();
        NodeSched {
            slots: initial.into_iter().map(|p| Some(Box::new(p))).collect(),
            mailboxes: (0..n).map(|_| VecDeque::new()).collect(),
            fifo: VecDeque::new(),
            rr_cursor: 0,
            next_proc_id: n as u32,
            pending: 0,
            dropped: 0,
            serviced: 0,
        }
    }

    /// Number of live processes.
    pub fn live_processes(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Messages waiting in mailboxes.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Immutable access to process `id` if alive.
    pub fn process(&self, id: u32) -> Option<&P> {
        self.slots.get(id as usize)?.as_deref()
    }

    fn ensure_slot(&mut self, id: u32) {
        if id as usize >= self.slots.len() {
            self.slots.resize_with(id as usize + 1, || None);
            self.mailboxes.resize_with(id as usize + 1, VecDeque::new);
        }
    }

    fn enqueue(&mut self, policy: SchedPolicy, proc: u32, src: ProcAddr, msg: P::Msg) {
        self.ensure_slot(proc);
        if self.slots[proc as usize].is_none() {
            self.dropped += 1;
            return;
        }
        match policy {
            SchedPolicy::Fifo => self.fifo.push_back((proc, src, msg)),
            _ => self.mailboxes[proc as usize].push_back((src, msg)),
        }
        self.pending += 1;
    }

    /// Selects the next activation per policy. Returns `None` when no live
    /// pending work remains.
    fn select(&mut self, policy: SchedPolicy) -> Option<(u32, ProcAddr, P::Msg)> {
        match policy {
            SchedPolicy::Fifo => loop {
                let (proc, src, msg) = self.fifo.pop_front()?;
                self.pending -= 1;
                if self.slots[proc as usize].is_some() {
                    return Some((proc, src, msg));
                }
                self.dropped += 1;
            },
            SchedPolicy::RoundRobin => {
                let n = self.mailboxes.len();
                for off in 0..n {
                    let i = (self.rr_cursor + off) % n;
                    if self.slots[i].is_none() {
                        self.dropped += self.mailboxes[i].len() as u64;
                        self.pending -= self.mailboxes[i].len();
                        self.mailboxes[i].clear();
                        continue;
                    }
                    if let Some((src, msg)) = self.mailboxes[i].pop_front() {
                        self.pending -= 1;
                        self.rr_cursor = (i + 1) % n;
                        return Some((i as u32, src, msg));
                    }
                }
                None
            }
            SchedPolicy::Priority => {
                // Fixed priorities: lower process id = higher priority.
                for i in 0..self.mailboxes.len() {
                    if self.slots[i].is_none() {
                        self.dropped += self.mailboxes[i].len() as u64;
                        self.pending -= self.mailboxes[i].len();
                        self.mailboxes[i].clear();
                        continue;
                    }
                    if let Some((src, msg)) = self.mailboxes[i].pop_front() {
                        self.pending -= 1;
                        return Some((i as u32, src, msg));
                    }
                }
                None
            }
        }
    }

    /// Runs one activation; returns false when nothing was runnable.
    fn service_one(
        &mut self,
        policy: SchedPolicy,
        node: NodeId,
        outbox: &mut Outbox<'_, SchedMsg<P::Msg>>,
    ) -> bool {
        let Some((proc, src, msg)) = self.select(policy) else {
            return false;
        };
        let mut process = self.slots[proc as usize]
            .take()
            .expect("select returns live processes");
        let mut actions: Vec<LocalAction<P::Msg>> = Vec::new();
        let mut spawned: Vec<(u32, Box<P>)> = Vec::new();
        let mut exited = false;
        {
            let mut ctx = ProcCtx {
                outbox,
                self_addr: ProcAddr::new(node, proc),
                src,
                actions: &mut actions,
                spawned: &mut spawned,
                next_proc_id: &mut self.next_proc_id,
            };
            process.on_message(msg, &mut ctx);
        }
        self.serviced += 1;
        // Apply spawns first so local deliveries to fresh processes land.
        for (id, p) in spawned {
            self.ensure_slot(id);
            debug_assert!(self.slots[id as usize].is_none());
            self.slots[id as usize] = Some(p);
        }
        // Re-insert the running process (unless it exited) *before* applying
        // deliveries, so messages it sent to itself are not dropped.
        if actions
            .iter()
            .any(|a| matches!(a, LocalAction::Exit(id) if *id == proc))
        {
            exited = true;
        }
        if !exited {
            self.slots[proc as usize] = Some(process);
        }
        for action in actions {
            match action {
                LocalAction::Deliver(to, from, msg) => self.enqueue(policy, to, from, msg),
                LocalAction::Exit(id) => {
                    if id != proc {
                        self.slots[id as usize] = None;
                    }
                }
            }
        }
        true
    }
}

/// The layer-2 host: a [`NodeProgram`] managing a process table per node.
///
/// `factory(node, ctx)` creates each node's initial processes (ids `0..k`).
/// Messages are [`SchedMsg`]-wrapped; external triggers should be injected
/// as `SchedMsg { src_proc: 0, dst_proc: <target>, inner }`.
pub struct SchedulerHost<P, F> {
    factory: F,
    policy: SchedPolicy,
    mode: ServiceMode,
    service_budget: u32,
    _marker: PhantomData<fn() -> P>,
}

impl<P, F> SchedulerHost<P, F>
where
    P: Process,
    F: Fn(NodeId, &InitCtx) -> Vec<P> + Sync,
{
    /// Creates a host with the paper-faithful arrival-driven service mode.
    pub fn new(factory: F, policy: SchedPolicy) -> Self {
        SchedulerHost {
            factory,
            policy,
            mode: ServiceMode::ArrivalDriven,
            service_budget: 1,
            _marker: PhantomData,
        }
    }

    /// Switches to tick-driven servicing of `budget` activations per step.
    pub fn tick_driven(mut self, budget: u32) -> Self {
        self.mode = ServiceMode::TickDriven;
        self.service_budget = budget.max(1);
        self
    }

    /// The engine configuration matching this host's service mode.
    pub fn recommended_sim_config(&self) -> SimConfig {
        match self.mode {
            ServiceMode::ArrivalDriven => SimConfig::default(),
            ServiceMode::TickDriven => SimConfig {
                msgs_per_step: u32::MAX,
                tick_every: Some(1),
                ..SimConfig::default()
            },
        }
    }

    fn drain_local(
        &self,
        state: &mut NodeSched<P>,
        node: NodeId,
        outbox: &mut Outbox<'_, SchedMsg<P::Msg>>,
        mut budget: u32,
    ) {
        let mut activations = 0u32;
        while budget > 0 && state.service_one(self.policy, node, outbox) {
            budget -= 1;
            activations += 1;
            assert!(
                activations < LOCAL_ACTIVATION_CAP,
                "node {node}: local activation livelock"
            );
        }
    }
}

impl<P, F> NodeProgram for SchedulerHost<P, F>
where
    P: Process,
    F: Fn(NodeId, &InitCtx) -> Vec<P> + Sync,
{
    type Msg = SchedMsg<P::Msg>;
    type State = NodeSched<P>;

    fn init(&self, node: NodeId, ctx: &InitCtx) -> NodeSched<P> {
        NodeSched::new((self.factory)(node, ctx))
    }

    fn on_message(
        &self,
        state: &mut NodeSched<P>,
        msg: SchedMsg<P::Msg>,
        ctx: &mut Outbox<'_, SchedMsg<P::Msg>>,
    ) {
        let node = ctx.node();
        let src = ProcAddr::new(ctx.sender(), msg.src_proc);
        state.enqueue(self.policy, msg.dst_proc, src, msg.inner);
        if self.mode == ServiceMode::ArrivalDriven {
            // Service the arrival plus any local follow-on messages it
            // generates: local communication models within-node computation
            // and is free of interconnect cost.
            self.drain_local(state, node, ctx, u32::MAX);
        }
    }

    fn on_tick(&self, state: &mut NodeSched<P>, ctx: &mut Outbox<'_, Self::Msg>) {
        if self.mode == ServiceMode::TickDriven {
            let node = ctx.node();
            self.drain_local(state, node, ctx, self.service_budget);
        }
    }

    fn is_idle(&self, state: &NodeSched<P>) -> bool {
        state.pending == 0
    }
}
