//! Node-level scheduling policies.

/// Decides which pending process activation a node services next.
///
/// §III-A2 names round-robin and preemptive scheduling as example
/// implementations; handlers here are run-to-completion, so "preemption"
/// manifests as priority selection between handler activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Service messages strictly in arrival order, regardless of process.
    #[default]
    Fifo,
    /// Cycle through processes with pending messages, one activation each,
    /// guaranteeing per-process fairness under load.
    RoundRobin,
    /// Always service the non-empty mailbox of the highest-priority process
    /// (ties broken by lower process id). Priorities are fixed at spawn.
    Priority,
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::RoundRobin => "round-robin",
            SchedPolicy::Priority => "priority",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(SchedPolicy::Fifo.to_string(), "fifo");
        assert_eq!(SchedPolicy::RoundRobin.to_string(), "round-robin");
        assert_eq!(SchedPolicy::Priority.to_string(), "priority");
    }

    #[test]
    fn default_is_fifo() {
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
    }
}
