//! ASCII renderers for figures: the benchmark harness prints these so runs
//! are inspectable without any plotting stack.

use crate::Heatmap;

/// Shade ramp used by [`render_heatmap`], darkest last.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders a line chart of `series` into `width x height` characters.
///
/// Points are column-averaged when the series is longer than `width`.
/// A `*` marks each sampled level. Returns a multi-line string, highest
/// values at the top, with a y-axis legend.
pub fn render_line_chart(series: &[f64], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "chart too small");
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    // Downsample to `width` columns by averaging.
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * series.len() / width;
            let hi = (((c + 1) * series.len()) / width).max(lo + 1);
            let slice = &series[lo..hi.min(series.len())];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect();
    let max = cols.iter().cloned().fold(f64::MIN, f64::max);
    let min = cols.iter().cloned().fold(f64::MAX, f64::min);
    let span = if (max - min).abs() < f64::EPSILON {
        1.0
    } else {
        max - min
    };
    let mut rows = vec![vec![' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        let level = ((v - min) / span * (height - 1) as f64).round() as usize;
        rows[height - 1 - level][c] = '*';
    }
    let mut out = String::with_capacity((width + 16) * height);
    for (i, row) in rows.iter().enumerate() {
        let label = if i == 0 {
            format!("{max:>10.2} |")
        } else if i == height - 1 {
            format!("{min:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

/// Renders several series superimposed (Figure 5, top row), one glyph per
/// series. All series share the chart's y-scale.
pub fn render_multi_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "chart too small");
    let glyphs = ['*', 'o', '+', 'x', '~', '^'];
    let global_max = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::MIN, f64::max);
    let global_min = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::MAX, f64::min);
    if series.iter().all(|(_, s)| s.is_empty()) {
        return String::from("(empty series)\n");
    }
    let span = if (global_max - global_min).abs() < f64::EPSILON {
        1.0
    } else {
        global_max - global_min
    };
    let mut rows = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        let glyph = glyphs[si % glyphs.len()];
        #[allow(clippy::needless_range_loop)] // `rows` is indexed by derived `level`, not `c`
        for c in 0..width {
            let lo = c * s.len() / width;
            let hi = (((c + 1) * s.len()) / width).max(lo + 1);
            let slice = &s[lo..hi.min(s.len())];
            let v = slice.iter().sum::<f64>() / slice.len() as f64;
            let level = ((v - global_min) / span * (height - 1) as f64).round() as usize;
            rows[height - 1 - level][c] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let label = if i == 0 {
            format!("{global_max:>10.2} |")
        } else if i == height - 1 {
            format!("{global_min:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

/// Renders a heatmap with one shaded character per cell, normalised to the
/// maximum cell value (Figure 5, bottom row).
pub fn render_heatmap(map: &Heatmap) -> String {
    let max = map.max().max(1);
    let mut out = String::with_capacity((map.width() + 3) * map.height());
    for y in 0..map.height() {
        out.push('|');
        for x in 0..map.width() {
            let v = map.get(x, y);
            let idx = ((v * (RAMP.len() as u64 - 1)) + max / 2) / max;
            out.push(RAMP[idx as usize]);
        }
        out.push('|');
        out.push('\n');
    }
    out
}

/// Renders a log-log scatter table (Figure 4 style): one row per x value,
/// one column per labelled series, `NaN`-safe.
pub fn render_loglog_table(x_label: &str, xs: &[usize], series: &[(&str, &[f64])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{x_label:>12}"));
    for (name, _) in series {
        out.push_str(&format!("  {name:>18}"));
    }
    out.push('\n');
    for (i, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>12}"));
        for (_, ys) in series {
            match ys.get(i) {
                Some(v) if v.is_finite() => out.push_str(&format!("  {v:>18.6}")),
                _ => out.push_str(&format!("  {:>18}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_shape() {
        let series: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let chart = render_line_chart(&series, 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 10);
        // Monotonic ramp: the star in the last column is on the top row.
        assert!(lines[0].ends_with('*'));
    }

    #[test]
    fn line_chart_constant_series() {
        let chart = render_line_chart(&[5.0; 10], 20, 5);
        assert!(chart.contains('*'));
    }

    #[test]
    fn multi_chart_legend() {
        let a: Vec<f64> = (0..50).map(|v| v as f64).collect();
        let b: Vec<f64> = (0..50).map(|v| (50 - v) as f64).collect();
        let chart = render_multi_chart(&[("up", &a), ("down", &b)], 30, 8);
        assert!(chart.contains("* up"));
        assert!(chart.contains("o down"));
    }

    #[test]
    fn heatmap_extremes() {
        let mut m = Heatmap::new(4, 2);
        m.add(0, 0, 100);
        let art = render_heatmap(&m);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("|@"));
        assert!(lines[1].contains("    "));
    }

    #[test]
    fn loglog_table_nan_safe() {
        let t = render_loglog_table(
            "cores",
            &[16, 64],
            &[("a", &[0.5, f64::NAN][..]), ("b", &[1.0][..])],
        );
        assert!(t.contains("cores"));
        assert!(t.contains('-'));
        assert!(t.contains("0.5"));
    }
}
