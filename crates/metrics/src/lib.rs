//! Instrumentation primitives for hyperspace simulations.
//!
//! The paper's evaluation (§V-C) derives three quantities from simulation
//! logs:
//!
//! 1. **computation time** — steps between the first (trigger) and last
//!    messages;
//! 2. **interconnect activity** — total queued messages across the mesh as
//!    a time series (Figure 5, top);
//! 3. **node activity** — total messages delivered to each node (Figure 5,
//!    bottom heatmaps).
//!
//! This crate supplies the containers those logs are collected into
//! ([`TimeSeries`], [`Heatmap`], [`Histogram`]), summary statistics
//! ([`Stats`]), and renderers that regenerate the paper's figures as CSV
//! files and ASCII charts ([`ascii`], [`csv`]).

#![warn(missing_docs)]

pub mod ascii;
pub mod csv;
mod heatmap;
mod histogram;
mod series;
mod stats;

pub use heatmap::Heatmap;
pub use histogram::Histogram;
pub use series::TimeSeries;
pub use stats::Stats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compile() {
        let _ = TimeSeries::<u64>::new();
        let _ = Histogram::new();
        let _ = Heatmap::new(2, 2);
        let _ = Stats::from_slice(&[1.0]);
    }
}
