//! 2-D activity heatmaps (Figure 5, bottom row).

/// A dense row-major 2-D grid of counters, one per mesh node.
///
/// For 3-D tori the convention is to tile z-slices side by side before
/// rendering (see [`crate::ascii::render_heatmap`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Heatmap {
    width: usize,
    height: usize,
    data: Vec<u64>,
}

impl Heatmap {
    /// A zeroed `width x height` heatmap.
    pub fn new(width: usize, height: usize) -> Self {
        Heatmap {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Builds a heatmap from per-node counts laid out row-major.
    pub fn from_counts(width: usize, height: usize, counts: &[u64]) -> Self {
        assert_eq!(counts.len(), width * height, "count/shape mismatch");
        Heatmap {
            width,
            height,
            data: counts.to_vec(),
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Value at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u64 {
        self.data[y * self.width + x]
    }

    /// Adds `delta` to the cell at `(x, y)`.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, delta: u64) {
        self.data[y * self.width + x] += delta;
    }

    /// Maximum cell value.
    pub fn max(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all cells.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Raw row-major cell values.
    pub fn as_slice(&self) -> &[u64] {
        &self.data
    }

    /// Coefficient of variation (std/mean) of cell values: a scalar measure
    /// of how *unevenly* activity spread across the mesh. Lower is more
    /// uniform; the paper's least-busy-neighbour mapping yields visibly
    /// lower spread than round-robin (Figure 5 bottom).
    pub fn spread(&self) -> f64 {
        let n = self.data.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.total() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .data
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut h = Heatmap::new(3, 2);
        h.add(2, 1, 5);
        h.add(0, 0, 1);
        h.add(2, 1, 2);
        assert_eq!(h.get(2, 1), 7);
        assert_eq!(h.get(0, 0), 1);
        assert_eq!(h.get(1, 1), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn from_counts_roundtrip() {
        let counts = [1u64, 2, 3, 4, 5, 6];
        let h = Heatmap::from_counts(3, 2, &counts);
        assert_eq!(h.get(0, 0), 1);
        assert_eq!(h.get(2, 1), 6);
        assert_eq!(h.as_slice(), &counts);
    }

    #[test]
    fn uniform_heatmap_has_zero_spread() {
        let h = Heatmap::from_counts(2, 2, &[5, 5, 5, 5]);
        assert_eq!(h.spread(), 0.0);
    }

    #[test]
    fn skewed_heatmap_has_positive_spread() {
        let uniform = Heatmap::from_counts(2, 2, &[5, 5, 5, 5]);
        let skewed = Heatmap::from_counts(2, 2, &[20, 0, 0, 0]);
        assert!(skewed.spread() > uniform.spread());
        assert!(skewed.spread() > 1.0);
    }

    #[test]
    #[should_panic(expected = "count/shape mismatch")]
    fn shape_mismatch_panics() {
        Heatmap::from_counts(2, 2, &[1, 2, 3]);
    }
}
