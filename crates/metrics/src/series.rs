//! Append-only time series sampled once per simulation step.

/// A time series of per-step samples (step `i` holds `data[i]`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries<T> {
    data: Vec<T>,
}

impl<T> TimeSeries<T> {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { data: Vec::new() }
    }

    /// An empty series with pre-reserved capacity (avoids reallocation in
    /// the simulator's hot loop when the step budget is known).
    pub fn with_capacity(cap: usize) -> Self {
        TimeSeries {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends the sample for the next step.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.data.push(value);
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The recorded samples.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the series, returning the raw samples.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl TimeSeries<u64> {
    /// Samples converted to `f64` (for plotting / statistics).
    pub fn to_f64(&self) -> Vec<f64> {
        self.data.iter().map(|&v| v as f64).collect()
    }
}

impl<T: Copy + Ord> TimeSeries<T> {
    /// Largest recorded sample.
    pub fn max(&self) -> Option<T> {
        self.data.iter().copied().max()
    }

    /// Index (step) of the first sample equal to the maximum.
    pub fn argmax(&self) -> Option<usize> {
        let max = self.max()?;
        self.data.iter().position(|&v| v == max)
    }

    /// The last step with a sample strictly greater than `threshold`.
    pub fn last_above(&self, threshold: T) -> Option<usize> {
        self.data.iter().rposition(|&v| v > threshold)
    }
}

impl<T> std::iter::FromIterator<T> for TimeSeries<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        TimeSeries {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_inspect() {
        let mut s = TimeSeries::with_capacity(4);
        assert!(s.is_empty());
        for v in [3u32, 9, 2, 9] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.max(), Some(9));
        assert_eq!(s.argmax(), Some(1));
        assert_eq!(s.last_above(2), Some(3));
        assert_eq!(s.last_above(9), None);
    }

    #[test]
    fn to_f64_converts() {
        let s: TimeSeries<u64> = [3u64, 9, 2].into_iter().collect();
        assert_eq!(s.to_f64(), vec![3.0, 9.0, 2.0]);
    }

    #[test]
    fn from_iterator() {
        let s: TimeSeries<u64> = (0..5).collect();
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(s.into_vec(), vec![0, 1, 2, 3, 4]);
    }
}
