//! Minimal CSV writers (std-only) for experiment outputs.
//!
//! The benchmark harness emits one CSV per figure so results can be
//! re-plotted with any external tool. Fields never contain commas or quotes
//! in our usage, so no quoting layer is needed; `write_row` still escapes
//! defensively.

use std::fmt::Write as _;
use std::io::{self, Write};

/// Writes a header row followed by data rows to `out`.
pub fn write_table<W: Write>(
    out: &mut W,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<()> {
    write_row(out, header.iter().map(|s| s.to_string()))?;
    for row in rows {
        write_row(out, row)?;
    }
    Ok(())
}

/// Writes one CSV row, escaping fields containing commas/quotes/newlines.
pub fn write_row<W: Write>(
    out: &mut W,
    fields: impl IntoIterator<Item = String>,
) -> io::Result<()> {
    let mut line = String::new();
    for (i, field) in fields.into_iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        if field.contains([',', '"', '\n']) {
            let _ = write!(line, "\"{}\"", field.replace('"', "\"\""));
        } else {
            line.push_str(&field);
        }
    }
    line.push('\n');
    out.write_all(line.as_bytes())
}

/// Formats a float compactly for CSV (6 significant digits).
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut buf = Vec::new();
        write_table(
            &mut buf,
            &["a", "b"],
            vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn escaping() {
        let mut buf = Vec::new();
        write_row(&mut buf, vec!["x,y".to_string(), "q\"t".to_string()]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "\"x,y\",\"q\"\"t\"\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.5), "0.500000");
        assert_eq!(fmt_f64(f64::NAN), "nan");
    }
}
