//! Summary statistics over `f64` samples.

/// Summary statistics of a sample set.
///
/// Figure 4's data points are means over 20 benchmark problems; the harness
/// additionally reports spread so runs can be compared honestly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (lower-middle for even n).
    pub median: f64,
    /// Geometric mean (NaN if any sample is non-positive).
    pub geomean: f64,
}

impl Stats {
    /// Computes summary statistics. Panics on an empty slice.
    pub fn from_slice(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "Stats::from_slice on empty input");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let geomean = if sorted[0] > 0.0 {
            (samples.iter().map(|v| v.ln()).sum::<f64>() / n as f64).exp()
        } else {
            f64::NAN
        };
        Stats {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: sorted[(n - 1) / 2],
            geomean,
        }
    }

    /// The `q`-quantile (0.0 ..= 1.0) by nearest-rank.
    pub fn quantile(samples: &[f64], q: f64) -> f64 {
        assert!(!samples.is_empty());
        assert!((0.0..=1.0).contains(&q));
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Stats::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((s.geomean - 24f64.powf(0.25)).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = Stats::from_slice(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.5);
    }

    #[test]
    fn geomean_nan_on_nonpositive() {
        let s = Stats::from_slice(&[0.0, 1.0]);
        assert!(s.geomean.is_nan());
    }

    #[test]
    fn quantiles() {
        let data: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(Stats::quantile(&data, 0.0), 1.0);
        assert_eq!(Stats::quantile(&data, 1.0), 100.0);
        let q50 = Stats::quantile(&data, 0.5);
        assert!((49.0..=51.0).contains(&q50));
    }
}
