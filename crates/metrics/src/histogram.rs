//! Power-of-two bucketed histograms for counts (hops, queue lengths, ...).

/// A histogram over `u64` samples with log2-spaced buckets.
///
/// Bucket `i` counts samples `v` with `floor(log2(v+1)) == i`, i.e. bucket 0
/// holds the value 0, bucket 1 holds {1, 2}, bucket 2 holds {3..6}, etc.
/// Log-spaced buckets match the heavy-tailed distributions seen in queue
/// lengths and sub-problem sizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty — an *internal sentinel only*: the public
    /// [`Histogram::min`] gates on `count` and reports `None` for empty
    /// histograms, so the sentinel can never leak into readings.
    min: u64,
    max: u64,
}

/// `Default` must construct exactly what [`Histogram::new`] does. A
/// derived impl would zero the `min` sentinel, silently pinning the
/// reported minimum of every later sample to 0 — a real bug when the
/// histogram is embedded in a `#[derive(Default)]` container.
impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rebuilds a histogram from raw parts (the checkpoint-codec path).
    /// `parts()` and `from_parts` round-trip exactly; feeding back
    /// anything else is the caller's responsibility.
    pub fn from_parts(buckets: Vec<u64>, count: u64, sum: u64, min: u64, max: u64) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// The raw fields `(buckets, count, sum, min, max)` for
    /// serialisation. `min` is the internal sentinel (`u64::MAX` when
    /// empty), not the gated [`Histogram::min`] reading.
    pub fn parts(&self) -> (&[u64], u64, u64, u64, u64) {
        (&self.buckets, self.count, self.sum, self.min, self.max)
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        // `value + 1` would wrap for u64::MAX, making `leading_zeros`
        // return 64 and the subtraction underflow (debug panic / garbage
        // bucket in release). Saturating pins the top value into the last
        // bucket, which is where it belongs anyway.
        (63 - value.saturating_add(1).leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket counts, index = log2 bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive value range `(lo, hi)` covered by bucket `i`. The last
    /// bucket (63) is clamped to `u64::MAX` instead of overflowing.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        let lo = (1u64 << i.min(63)) - 1;
        let hi = if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 2
        };
        (lo, hi)
    }

    /// Merges another histogram into this one. Merging an empty
    /// histogram is the identity — in particular a merge of two empty
    /// histograms stays empty (`count() == 0`, `min()`/`max()` both
    /// `None`), rather than relying on sentinel values cancelling out.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(6), 2);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 2));
        assert_eq!(Histogram::bucket_range(2), (3, 6));
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 21.4).abs() < 1e-9);
        assert_eq!(h.buckets()[0], 1); // the 0
        assert_eq!(h.buckets()[1], 2); // the 1s
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn extreme_values_do_not_underflow_the_bucket_index() {
        // Regression: `(u64::MAX + 1)` wrapped to 0, `leading_zeros`
        // returned 64, and `64 - 64 - 1` underflowed — a debug panic, or
        // a garbage bucket index in release.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        assert_eq!(Histogram::bucket_of(u64::MAX - 1), 63);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.min(), Some(u64::MAX - 1));
        assert_eq!(h.buckets()[63], 2);
        // The top bucket's range is clamped instead of overflowing.
        let (lo, hi) = Histogram::bucket_range(63);
        assert_eq!(lo, (1u64 << 63) - 1);
        assert_eq!(hi, u64::MAX);
        assert!(lo < u64::MAX - 1, "both recorded values sit in bucket 63");
    }

    #[test]
    fn default_matches_new_and_tracks_min_correctly() {
        // Regression: a derived Default zeroed the min sentinel, so a
        // histogram obtained via Default (e.g. inside a
        // `#[derive(Default)]` stats container) reported min = 0 for
        // every sample stream.
        let mut h = Histogram::default();
        assert_eq!(h, Histogram::new());
        h.record(5);
        assert_eq!(h.min(), Some(5));
    }

    #[test]
    fn merge_of_empties_stays_empty() {
        let mut a = Histogram::new();
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        // A later record starts from a clean slate, not from sentinel
        // residue.
        a.record(9);
        assert_eq!(a.min(), Some(9));
        assert_eq!(a.max(), Some(9));
    }

    #[test]
    fn merge_with_one_empty_side_is_identity() {
        let mut recorded = Histogram::new();
        recorded.record(3);
        recorded.record(12);
        let snapshot = recorded.clone();
        recorded.merge(&Histogram::new());
        assert_eq!(recorded, snapshot, "merging an empty rhs is a no-op");
        let mut empty = Histogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot, "merging into an empty lhs adopts rhs");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..50u64 {
            a.record(v);
            c.record(v);
        }
        for v in 50..200u64 {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn parts_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 7, 7, 900] {
            h.record(v);
        }
        let (buckets, count, sum, min, max) = h.parts();
        let rebuilt = Histogram::from_parts(buckets.to_vec(), count, sum, min, max);
        assert_eq!(rebuilt, h);
        // The empty histogram round-trips its sentinel untouched.
        let empty = Histogram::new();
        let (buckets, count, sum, min, max) = empty.parts();
        assert_eq!(min, u64::MAX);
        let rebuilt = Histogram::from_parts(buckets.to_vec(), count, sum, min, max);
        assert_eq!(rebuilt.min(), None);
        assert_eq!(rebuilt, empty);
    }
}
