//! Power-of-two bucketed histograms for counts (hops, queue lengths, ...).

/// A histogram over `u64` samples with log2-spaced buckets.
///
/// Bucket `i` counts samples `v` with `floor(log2(v+1)) == i`, i.e. bucket 0
/// holds the value 0, bucket 1 holds {1, 2}, bucket 2 holds {3..6}, etc.
/// Log-spaced buckets match the heavy-tailed distributions seen in queue
/// lengths and sub-problem sizes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        (64 - (value + 1).leading_zeros() - 1) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket counts, index = log2 bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive value range `(lo, hi)` covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        ((1u64 << i) - 1, (1u64 << (i + 1)) - 2)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(6), 2);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 2));
        assert_eq!(Histogram::bucket_range(2), (3, 6));
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 21.4).abs() < 1e-9);
        assert_eq!(h.buckets()[0], 1); // the 0
        assert_eq!(h.buckets()[1], 2); // the 1s
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..50u64 {
            a.record(v);
            c.record(v);
        }
        for v in 50..200u64 {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }
}
