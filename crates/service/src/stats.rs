//! [`ServiceStats`]: the service's aggregate operational report.

use std::time::Duration;

use hyperspace_metrics::Histogram;

/// Converts a duration to whole microseconds, saturating at `u64::MAX`
/// instead of silently truncating the `u128` (`as u64` would wrap a
/// pathological ~584-millennium wait into a tiny number, corrupting
/// every histogram and busy-time counter downstream). All
/// duration-to-micros conversions in the service go through this.
pub(crate) fn saturating_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Converts an unsigned counter (step counts, byte sizes, microsecond
/// totals) to the flight recorder's signed `value` field, saturating at
/// `i64::MAX` instead of wrapping negative (`as i64` would turn a
/// corrupted or adversarial `u64::MAX` into `-1`). All
/// externally-influenced u64 → i64 conversions in the service go
/// through this.
pub(crate) fn saturating_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

/// Mutable counters behind the service's stats mutex.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub submitted: u64,
    pub completed: u64,
    pub timed_out: u64,
    pub cancelled: u64,
    pub failed: u64,
    pub cache_hits: u64,
    pub preemptions: u64,
    pub suspensions: u64,
    pub restarts: u64,
    pub persisted: u64,
    pub recovered: u64,
    pub persist_errors: u64,
    pub queue_wait_us: Histogram,
    pub solve_time_us: Histogram,
    pub per_worker_jobs: Vec<u64>,
    pub per_worker_busy_us: Vec<u64>,
    pub jobs_by_kind: std::collections::HashMap<String, u64>,
}

impl StatsInner {
    pub(crate) fn new(workers: usize) -> StatsInner {
        StatsInner {
            per_worker_jobs: vec![0; workers],
            per_worker_busy_us: vec![0; workers],
            ..StatsInner::default()
        }
    }
}

/// A point-in-time snapshot of the service's operational metrics.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Worker pool size.
    pub workers: usize,
    /// Time since the service started.
    pub uptime: Duration,
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs that ran to completion (including step-cap endings).
    pub completed: u64,
    /// Jobs that hit their deadline (queued or mid-solve).
    pub timed_out: u64,
    /// Jobs cancelled by their submitters (or dropped at shutdown).
    pub cancelled: u64,
    /// Jobs that panicked or were refused.
    pub failed: u64,
    /// Results served straight from the cache.
    pub cache_hits: u64,
    /// Times a running job was preempted back into the queue because
    /// higher-priority work was waiting (automatic time-slicing).
    pub preemptions: u64,
    /// Times a submitter suspended a running job via
    /// [`crate::JobHandle::suspend`].
    pub suspensions: u64,
    /// Jobs restarted from their last checkpoint after a worker crash.
    pub restarts: u64,
    /// Durable records written to the on-disk job store.
    pub persisted: u64,
    /// Jobs rebuilt from the on-disk job store after a process restart.
    pub recovered: u64,
    /// Store writes that failed plus on-disk records that failed to
    /// decode (corrupt records are quarantined, never trusted).
    pub persist_errors: u64,
    /// Entries currently held by the result cache.
    pub cache_entries: usize,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Distribution of queue-wait times (microseconds).
    pub queue_wait_us: Histogram,
    /// Distribution of solve times (microseconds; cache hits excluded).
    pub solve_time_us: Histogram,
    /// Jobs serviced per worker.
    pub per_worker_jobs: Vec<u64>,
    /// Cumulative busy time per worker.
    pub per_worker_busy: Vec<Duration>,
    /// Finished-job counts by workload label, sorted by label.
    pub jobs_by_kind: Vec<(String, u64)>,
}

impl ServiceStats {
    /// Jobs that reached a terminal state.
    pub fn finished(&self) -> u64 {
        self.completed + self.timed_out + self.cancelled + self.failed
    }

    /// Finished jobs per second of uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.finished() as f64 / secs
        }
    }

    /// Fraction of completed jobs served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.completed as f64
        }
    }

    /// Fraction of a worker's wall-clock spent solving. Unknown worker
    /// ids report `0.0` — a dashboard polling a stale snapshot must not
    /// panic the caller.
    pub fn worker_utilization(&self, worker: usize) -> f64 {
        let up = self.uptime.as_secs_f64();
        let busy = match self.per_worker_busy.get(worker) {
            Some(d) => d.as_secs_f64(),
            None => return 0.0,
        };
        if up == 0.0 {
            0.0
        } else {
            busy / up
        }
    }
}

fn render_histogram(
    f: &mut std::fmt::Formatter<'_>,
    name: &str,
    h: &Histogram,
) -> std::fmt::Result {
    if h.count() == 0 {
        return writeln!(f, "  {name}: (no samples)");
    }
    writeln!(
        f,
        "  {name}: n={} mean={:.0}us min={}us max={}us",
        h.count(),
        h.mean(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0)
    )?;
    for (i, &count) in h.buckets().iter().enumerate() {
        if count > 0 {
            let (lo, hi) = Histogram::bucket_range(i);
            writeln!(f, "    [{lo:>8}us .. {hi:>10}us] {count}")?;
        }
    }
    Ok(())
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "service: {} workers, up {:.2?}, {:.1} jobs/s",
            self.workers,
            self.uptime,
            self.throughput()
        )?;
        writeln!(
            f,
            "  jobs: {} submitted | {} completed | {} timed-out | {} cancelled | {} failed | {} queued",
            self.submitted,
            self.completed,
            self.timed_out,
            self.cancelled,
            self.failed,
            self.queue_depth
        )?;
        writeln!(
            f,
            "  cache: {} hits ({:.0}% of completions), {} entries held",
            self.cache_hits,
            self.cache_hit_rate() * 100.0,
            self.cache_entries
        )?;
        if self.preemptions + self.suspensions + self.restarts > 0 {
            writeln!(
                f,
                "  scheduling: {} preemptions | {} suspensions | {} checkpoint restarts",
                self.preemptions, self.suspensions, self.restarts
            )?;
        }
        if self.persisted + self.recovered + self.persist_errors > 0 {
            writeln!(
                f,
                "  durability: {} persisted | {} recovered | {} persist errors",
                self.persisted, self.recovered, self.persist_errors
            )?;
        }
        render_histogram(f, "queue wait", &self.queue_wait_us)?;
        render_histogram(f, "solve time", &self.solve_time_us)?;
        for (w, jobs) in self.per_worker_jobs.iter().enumerate() {
            writeln!(
                f,
                "  worker {w}: {jobs} jobs, busy {:.2?} ({:.0}% utilised)",
                self.per_worker_busy[w],
                self.worker_utilization(w) * 100.0
            )?;
        }
        if !self.jobs_by_kind.is_empty() {
            let kinds: Vec<String> = self
                .jobs_by_kind
                .iter()
                .map(|(k, n)| format!("{k}={n}"))
                .collect();
            writeln!(f, "  by kind: {}", kinds.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_utilization_is_zero_for_unknown_workers() {
        let stats = ServiceStats {
            workers: 2,
            uptime: Duration::from_secs(10),
            submitted: 0,
            completed: 0,
            timed_out: 0,
            cancelled: 0,
            failed: 0,
            cache_hits: 0,
            preemptions: 0,
            suspensions: 0,
            restarts: 0,
            persisted: 0,
            recovered: 0,
            persist_errors: 0,
            cache_entries: 0,
            queue_depth: 0,
            queue_wait_us: Histogram::default(),
            solve_time_us: Histogram::default(),
            per_worker_jobs: vec![1, 2],
            per_worker_busy: vec![Duration::from_secs(5), Duration::from_secs(1)],
            jobs_by_kind: Vec::new(),
        };
        assert!((stats.worker_utilization(0) - 0.5).abs() < 1e-9);
        assert!((stats.worker_utilization(1) - 0.1).abs() < 1e-9);
        // Out-of-range ids must not panic (a dashboard may poll with a
        // worker count from an older snapshot).
        assert_eq!(stats.worker_utilization(2), 0.0);
        assert_eq!(stats.worker_utilization(usize::MAX), 0.0);
    }

    #[test]
    fn saturating_micros_is_exact_below_the_cap() {
        assert_eq!(saturating_micros(Duration::ZERO), 0);
        assert_eq!(saturating_micros(Duration::from_micros(1)), 1);
        assert_eq!(saturating_micros(Duration::from_millis(7)), 7_000);
        assert_eq!(saturating_micros(Duration::from_secs(3)), 3_000_000);
        // Sub-microsecond remainders truncate toward zero, as before.
        assert_eq!(saturating_micros(Duration::from_nanos(999)), 0);
    }

    #[test]
    fn saturating_micros_saturates_instead_of_wrapping() {
        // u64::MAX seconds is ~10^19 s; in microseconds that exceeds
        // u64::MAX by a factor of 10^6 — `as u64` would silently wrap.
        let huge = Duration::new(u64::MAX, 999_999_999);
        assert_eq!(saturating_micros(huge), u64::MAX);
        // The exact boundary: u64::MAX microseconds still fits.
        let edge = Duration::from_micros(u64::MAX);
        assert_eq!(saturating_micros(edge), u64::MAX);
        let over = edge + Duration::from_micros(1);
        assert_eq!(saturating_micros(over), u64::MAX);
    }

    #[test]
    fn saturating_i64_is_exact_below_the_cap() {
        assert_eq!(saturating_i64(0), 0);
        assert_eq!(saturating_i64(1), 1);
        assert_eq!(saturating_i64(i64::MAX as u64), i64::MAX);
    }

    #[test]
    fn saturating_i64_saturates_instead_of_wrapping_negative() {
        // `as i64` would map these to i64::MIN and -1 respectively.
        assert_eq!(saturating_i64(i64::MAX as u64 + 1), i64::MAX);
        assert_eq!(saturating_i64(u64::MAX), i64::MAX);
    }
}
