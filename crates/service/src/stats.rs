//! [`ServiceStats`]: the service's aggregate operational report.

use std::time::Duration;

use hyperspace_metrics::Histogram;

/// Mutable counters behind the service's stats mutex.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub submitted: u64,
    pub completed: u64,
    pub timed_out: u64,
    pub cancelled: u64,
    pub failed: u64,
    pub cache_hits: u64,
    pub queue_wait_us: Histogram,
    pub solve_time_us: Histogram,
    pub per_worker_jobs: Vec<u64>,
    pub per_worker_busy_us: Vec<u64>,
    pub jobs_by_kind: std::collections::HashMap<String, u64>,
}

impl StatsInner {
    pub(crate) fn new(workers: usize) -> StatsInner {
        StatsInner {
            per_worker_jobs: vec![0; workers],
            per_worker_busy_us: vec![0; workers],
            ..StatsInner::default()
        }
    }
}

/// A point-in-time snapshot of the service's operational metrics.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Worker pool size.
    pub workers: usize,
    /// Time since the service started.
    pub uptime: Duration,
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs that ran to completion (including step-cap endings).
    pub completed: u64,
    /// Jobs that hit their deadline (queued or mid-solve).
    pub timed_out: u64,
    /// Jobs cancelled by their submitters (or dropped at shutdown).
    pub cancelled: u64,
    /// Jobs that panicked or were refused.
    pub failed: u64,
    /// Results served straight from the cache.
    pub cache_hits: u64,
    /// Entries currently held by the result cache.
    pub cache_entries: usize,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Distribution of queue-wait times (microseconds).
    pub queue_wait_us: Histogram,
    /// Distribution of solve times (microseconds; cache hits excluded).
    pub solve_time_us: Histogram,
    /// Jobs serviced per worker.
    pub per_worker_jobs: Vec<u64>,
    /// Cumulative busy time per worker.
    pub per_worker_busy: Vec<Duration>,
    /// Finished-job counts by workload label, sorted by label.
    pub jobs_by_kind: Vec<(String, u64)>,
}

impl ServiceStats {
    /// Jobs that reached a terminal state.
    pub fn finished(&self) -> u64 {
        self.completed + self.timed_out + self.cancelled + self.failed
    }

    /// Finished jobs per second of uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.finished() as f64 / secs
        }
    }

    /// Fraction of completed jobs served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.completed as f64
        }
    }

    /// Fraction of a worker's wall-clock spent solving.
    pub fn worker_utilization(&self, worker: usize) -> f64 {
        let up = self.uptime.as_secs_f64();
        if up == 0.0 {
            0.0
        } else {
            self.per_worker_busy[worker].as_secs_f64() / up
        }
    }
}

fn render_histogram(
    f: &mut std::fmt::Formatter<'_>,
    name: &str,
    h: &Histogram,
) -> std::fmt::Result {
    if h.count() == 0 {
        return writeln!(f, "  {name}: (no samples)");
    }
    writeln!(
        f,
        "  {name}: n={} mean={:.0}us min={}us max={}us",
        h.count(),
        h.mean(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0)
    )?;
    for (i, &count) in h.buckets().iter().enumerate() {
        if count > 0 {
            let (lo, hi) = Histogram::bucket_range(i);
            writeln!(f, "    [{lo:>8}us .. {hi:>10}us] {count}")?;
        }
    }
    Ok(())
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "service: {} workers, up {:.2?}, {:.1} jobs/s",
            self.workers,
            self.uptime,
            self.throughput()
        )?;
        writeln!(
            f,
            "  jobs: {} submitted | {} completed | {} timed-out | {} cancelled | {} failed | {} queued",
            self.submitted,
            self.completed,
            self.timed_out,
            self.cancelled,
            self.failed,
            self.queue_depth
        )?;
        writeln!(
            f,
            "  cache: {} hits ({:.0}% of completions), {} entries held",
            self.cache_hits,
            self.cache_hit_rate() * 100.0,
            self.cache_entries
        )?;
        render_histogram(f, "queue wait", &self.queue_wait_us)?;
        render_histogram(f, "solve time", &self.solve_time_us)?;
        for (w, jobs) in self.per_worker_jobs.iter().enumerate() {
            writeln!(
                f,
                "  worker {w}: {jobs} jobs, busy {:.2?} ({:.0}% utilised)",
                self.per_worker_busy[w],
                self.worker_utilization(w) * 100.0
            )?;
        }
        if !self.jobs_by_kind.is_empty() {
            let kinds: Vec<String> = self
                .jobs_by_kind
                .iter()
                .map(|(k, n)| format!("{k}={n}"))
                .collect();
            writeln!(f, "  by kind: {}", kinds.join(" "))?;
        }
        Ok(())
    }
}
