//! **hyperspace-service** — a multi-tenant solver service over the
//! five-layer stack.
//!
//! The paper's §VII pitch is that solvers assembled from the layer
//! repertoire can be "developed quickly" and deployed as reusable
//! machines. Everything below this crate solves *one* problem per
//! [`hyperspace_core::StackBuilder::run`]; this crate turns the
//! repertoire into a long-running **service**:
//!
//! * a pool of persistent worker threads ([`SolverService`]) fed by a
//!   shared **priority queue** — higher-priority jobs run first, ties
//!   run in submission order;
//! * **typed jobs** ([`JobKind`]): SAT (from [`hyperspace_sat::Cnf`] or
//!   DIMACS text), knapsack, n-queens, fib, sum, or any user-supplied
//!   [`hyperspace_recursion::RecProgram`] via type erasure — each with
//!   its own machine configuration ([`JobSpec`]: topology, mapper,
//!   layer-4 cancellation, step cap, root placement);
//! * **deadlines and cancellation** ([`JobRequest::deadline`],
//!   [`JobHandle::cancel`]): wall-clock budgets count from submission,
//!   and both queued and mid-solve jobs stop cooperatively through the
//!   engine's [`hyperspace_sim::StopHandle`] hook, yielding
//!   [`JobOutcome::TimedOut`] / [`JobOutcome::Cancelled`] without
//!   stalling the pool;
//! * a keyed **result cache**: [`JobSpec::cache_key`] normalises a job
//!   into a canonical string, and repeated identical submissions are
//!   answered with the cached [`hyperspace_core::RunSummary`] without
//!   re-solving;
//! * a [`ServiceStats`] report: throughput, queue-wait and solve-time
//!   histograms (via `hyperspace-metrics`), cache hit rate, and
//!   per-worker utilization;
//! * a **live observability layer** ([`SolverService::observe`] →
//!   [`ServiceObserver`]): per-job progress probes fed from inside the
//!   engines (steps, deliveries, frontier, incumbents, checkpoint and
//!   barrier timing), a lifecycle flight recorder whose tail is dumped
//!   when a worker panics, JSON snapshots and ASCII dashboards — all
//!   strictly one-way, so observed runs stay bit-identical to
//!   un-observed ones.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use hyperspace_service::{JobKind, JobRequest, JobSpec, SolverService};
//! use hyperspace_core::TopologySpec;
//! use hyperspace_sat::gen;
//!
//! let service = SolverService::with_workers(2);
//!
//! // A SAT instance on a 6x6 torus, high priority, 10s budget.
//! let sat = JobRequest::new(
//!     JobSpec::new(JobKind::sat(gen::uf20_91(42)))
//!         .topology(TopologySpec::Torus2D { w: 6, h: 6 }),
//! )
//! .priority(10)
//! .deadline(Duration::from_secs(10));
//! let handle = service.submit(sat);
//!
//! // A knapsack job rides along at default priority.
//! let other = service.submit(JobKind::fib(12));
//!
//! assert!(handle.wait().outcome.is_completed());
//! assert!(other.wait().outcome.is_completed());
//! println!("{}", service.stats());
//! ```

#![warn(missing_docs)]

mod handle;
mod job;
mod observe;
pub mod persist;
mod service;
mod stats;

pub use handle::{JobHandle, JobStatus};
pub use job::{JobKind, JobOutcome, JobRequest, JobResult, JobSpec};
pub use observe::ServiceObserver;
pub use service::{ServiceConfig, SolverService};
pub use stats::ServiceStats;
