//! [`SolverService`]: the multi-tenant worker pool.

use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hyperspace_core::{ErasedStackJob, JobParams, RunSlice, RunSummary, SliceOutcome, StartedJob};
use hyperspace_obs::{
    saturating_nanos, Event, EventKind, Gauge, ObsHandle, Observer, Phase, Registry,
};
use hyperspace_sim::RunOutcome;
use hyperspace_store::JobStore;

use crate::handle::{JobHandle, JobShared};
use crate::job::{JobOutcome, JobRequest, JobResult, JobSpec};
use crate::observe::ServiceObserver;
use crate::persist;
use crate::stats::{saturating_i64, saturating_micros, ServiceStats, StatsInner};

/// What a queued entry carries: a job not yet started, or a running job
/// suspended at a checkpoint barrier (preemption / explicit suspend)
/// waiting to resume exactly where it stopped.
enum Payload {
    /// Not yet started.
    Start(ErasedStackJob),
    /// Suspended mid-run; resuming is bit-identical to never stopping.
    Resume(Box<dyn RunSlice>),
}

/// A job as it sits in the priority queue.
struct QueuedJob {
    priority: i32,
    seq: u64,
    submitted_at: Instant,
    deadline_at: Option<Instant>,
    params: JobParams,
    /// `None` only transiently while a worker holds the job.
    payload: Option<Payload>,
    cache_key: Option<String>,
    label: String,
    shared: Arc<JobShared>,
    /// Re-creates the job from its spec — the checkpoint-restart path
    /// for crashed workers. Present only for checkpoint-enabled jobs
    /// whose workload is rebuildable ([`crate::JobKind::try_clone`]).
    rebuild: Option<Box<dyn Fn() -> ErasedStackJob + Send>>,
    /// Crash-recovery attempts consumed.
    attempt: u32,
    /// Steps completed at the last observed checkpoint barrier.
    checkpoint_steps: u64,
    /// After a crash restart: replay (deterministically) to this step
    /// before preemption checks resume — the logical "restore from the
    /// last checkpoint".
    resume_floor: u64,
    /// Queue wait to the *first* pickup (re-queues from preemption are
    /// scheduling churn, not queue wait).
    first_wait: Option<Duration>,
    /// Execution sequence number assigned at first pickup.
    exec_seq: Option<u64>,
    /// Solve time accumulated over earlier slices of this job.
    solve_so_far: Duration,
    /// The job's durable spec encoding — present iff the service has a
    /// store and the workload is persistable. Encoded exactly once (at
    /// submission or recovery) and reused verbatim by every barrier
    /// persist.
    spec_bytes: Option<Arc<Vec<u8>>>,
    /// Sequence number of the job's next durable write; resumes — not
    /// resets — across recovery, so a record's freshness is always
    /// comparable.
    persist_seq: u64,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    /// Max-heap order: higher priority first; FIFO within a priority.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct QueueInner {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    running: usize,
    shutdown: bool,
}

/// Bounded FIFO result cache: when full, the oldest entry is evicted.
/// Bounded because the service is long-running and keys embed full
/// problem renderings — an unbounded map would grow without limit under
/// a stream of distinct jobs.
struct ResultCache {
    map: HashMap<String, RunSummary>,
    order: std::collections::VecDeque<String>,
    capacity: usize,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity,
        }
    }

    fn get(&self, key: &str) -> Option<RunSummary> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: &str, summary: RunSummary) {
        if self.capacity == 0 {
            return;
        }
        if self.map.contains_key(key) {
            return; // identical computation; keep the original entry
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.map.remove(&oldest);
                }
                None => break,
            }
        }
        self.map.insert(key.to_string(), summary);
        self.order.push_back(key.to_string());
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

struct ServiceInner {
    queue: Mutex<QueueInner>,
    /// Signalled on push and on shutdown; workers wait here.
    available: Condvar,
    /// Signalled when a worker finishes a job; drain waiters wait here.
    drained: Condvar,
    cache: Mutex<ResultCache>,
    stats: Mutex<StatsInner>,
    next_id: AtomicU64,
    exec_seq: AtomicU64,
    started: Instant,
    workers: usize,
    max_restarts: u32,
    /// Live telemetry: per-job probes, lifecycle flight recorder, crash
    /// dumps. Strictly one-way — nothing read from here feeds back into
    /// scheduling or solving, so results stay bit-identical whether
    /// anyone is watching or not.
    registry: Arc<Registry>,
    /// Cached `queue.depth` gauge cell (skips the registry name lookup
    /// on every push/pop).
    depth: Gauge,
    /// The durable on-disk job store, when configured
    /// ([`ServiceConfig::store_dir`]).
    store: Option<Arc<JobStore>>,
    /// Set by [`SolverService::kill`]: simulate abrupt process death.
    /// Workers stop at their next barrier without finishing handles,
    /// and durable records are left in place for the next service to
    /// recover.
    killed: AtomicBool,
}

/// Configuration of a [`SolverService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker pool size.
    pub workers: usize,
    /// Whether worker threads start immediately
    /// ([`SolverService::start`] launches them otherwise).
    pub start_workers: bool,
    /// Maximum entries in the result cache; the oldest entry is evicted
    /// at capacity. `0` disables caching entirely.
    pub cache_capacity: usize,
    /// How many times a checkpointed, rebuildable job whose worker
    /// crashed (panicked) mid-solve is restarted from its last
    /// checkpoint before being reported [`JobOutcome::Failed`].
    /// Restarts re-derive the checkpoint state by deterministic replay,
    /// so a recovered job's result is bit-identical to an uninterrupted
    /// one. `0` disables crash recovery (jobs without checkpoints are
    /// never restarted regardless).
    pub max_restarts: u32,
    /// Directory of the durable on-disk job store. When set, every
    /// checkpoint-enabled persistable job's latest record (spec +
    /// progress floor) survives process death under this directory, and
    /// a new service opened over the same directory recovers all
    /// in-flight jobs before its workers start
    /// ([`SolverService::recovered`]). `None` (the default) disables
    /// persistence entirely.
    pub store_dir: Option<PathBuf>,
    /// Capacity of the service-wide flight recorder (events kept in the
    /// ring). Bounds-checked on service construction: values are clamped
    /// into `[1, 2^20]`, so a zero capacity keeps the most recent event
    /// rather than silently recording nothing.
    pub flight_recorder_capacity: usize,
    /// How many trailing flight-recorder events a crash dump preserves.
    /// Clamped into `[1, flight_recorder_capacity]`.
    pub crash_dump_tail: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 16),
            start_workers: true,
            cache_capacity: 4096,
            max_restarts: 1,
            store_dir: None,
            flight_recorder_capacity: 256,
            crash_dump_tail: hyperspace_obs::CRASH_DUMP_TAIL,
        }
    }
}

/// A multi-tenant solver service: persistent worker threads pull typed
/// jobs off a shared priority queue, assemble the requested five-layer
/// stack, and solve under the job's deadline; identical submissions are
/// served from a keyed result cache.
///
/// Workers outlive jobs (the pool is the long-lived "machine" of §VII's
/// repertoire vision); per-job machine configuration — topology, mapper,
/// layer-4 cancellation — travels with each [`JobRequest`], so tenants
/// with different workloads share the same pool.
///
/// ```
/// use hyperspace_service::{JobKind, SolverService};
///
/// let service = SolverService::with_workers(2);
/// let job = service.submit(JobKind::sum(100));
/// let result = job.wait();
/// let summary = result.outcome.summary().expect("completed");
/// assert_eq!(summary.result.as_deref(), Some("5050"));
/// ```
pub struct SolverService {
    inner: Arc<ServiceInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// Handles of jobs recovered from the durable store at startup.
    recovered: Vec<JobHandle>,
}

impl SolverService {
    /// A service with the given configuration.
    ///
    /// # Panics
    ///
    /// When [`ServiceConfig::store_dir`] is set but the directory cannot
    /// be created or scanned — a service that silently dropped its
    /// durability guarantee would be worse than one that refuses to
    /// start.
    pub fn new(cfg: ServiceConfig) -> SolverService {
        assert!(cfg.workers >= 1, "a service needs at least one worker");
        let store = cfg
            .store_dir
            .as_ref()
            .map(|dir| Arc::new(JobStore::open(dir).expect("open the durable job store")));
        let registry = Arc::new(Registry::with_limits(
            cfg.flight_recorder_capacity.clamp(1, 1 << 20),
            cfg.crash_dump_tail,
        ));
        let depth = registry.gauge("queue.depth");
        let inner = Arc::new(ServiceInner {
            queue: Mutex::new(QueueInner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                running: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            drained: Condvar::new(),
            cache: Mutex::new(ResultCache::new(cfg.cache_capacity)),
            stats: Mutex::new(StatsInner::new(cfg.workers)),
            next_id: AtomicU64::new(0),
            exec_seq: AtomicU64::new(0),
            started: Instant::now(),
            workers: cfg.workers,
            max_restarts: cfg.max_restarts,
            registry,
            depth,
            store,
            killed: AtomicBool::new(false),
        });
        let mut service = SolverService {
            inner,
            threads: Vec::new(),
            recovered: Vec::new(),
        };
        service.recover();
        if cfg.start_workers {
            service.start();
        }
        service
    }

    /// Scans the durable store and re-queues every in-flight job it
    /// finds, before the workers start (so recovered jobs re-enter in
    /// their original submission order, ahead of anything submitted to
    /// this incarnation). Each keeps its original id and replays
    /// deterministically to its last checkpoint barrier; corrupt
    /// records are quarantined by the scan and counted as persist
    /// errors. No-op without a store.
    fn recover(&mut self) {
        let Some(store) = self.inner.store.clone() else {
            return;
        };
        let outcome = store.scan().expect("scan the durable job store");
        let mut persist_errors = outcome.corrupt.len() as u64;
        for manifest in outcome.jobs {
            let record = match persist::decode_record(&manifest.payload) {
                Ok(record) => record,
                Err(_) => {
                    // Manifest framing was healthy but the job record
                    // inside was not; quarantine it like the scan does
                    // so the next restart is not haunted by it too.
                    let _ = store.remove(manifest.job_id);
                    persist_errors += 1;
                    continue;
                }
            };
            let id = manifest.job_id;
            let next = self.inner.next_id.load(Ordering::Relaxed).max(id + 1);
            self.inner.next_id.store(next, Ordering::Relaxed);
            let spec = JobSpec {
                kind: record.kind,
                params: record.params,
            };
            let cache_key = spec.cache_key();
            let label = spec.kind.label();
            let portfolio = spec.params.portfolio.is_some() || spec.params.strategy.is_some();
            let rebuild: Option<Box<dyn Fn() -> ErasedStackJob + Send>> =
                spec.kind.try_clone().map(|kind| {
                    Box::new(move || {
                        kind.try_clone()
                            .expect("cloneable kinds stay cloneable")
                            .into_erased(portfolio)
                    }) as Box<dyn Fn() -> ErasedStackJob + Send>
                });
            let shared = JobShared::new(id);
            self.recovered.push(JobHandle {
                shared: Arc::clone(&shared),
            });
            {
                let mut stats = self.inner.stats.lock().expect("stats poisoned");
                stats.submitted += 1;
                stats.recovered += 1;
            }
            // Through the job's probe, not the registry directly: the
            // probe counts the recovery (see `JobProbe::recovers`) and
            // forwards the event to the shared flight recorder.
            self.inner.registry.probe(id, &label).on_event(
                &Event::new(
                    EventKind::Recovered,
                    Some(id),
                    saturating_i64(record.checkpoint_steps),
                )
                .with_detail(label.clone()),
            );
            let now = Instant::now();
            let queued = QueuedJob {
                priority: record.priority,
                seq: 0, // assigned under the queue lock below
                submitted_at: now,
                // Deadlines are wall-clock budgets from the original
                // submission; after a restart of unknown delay they are
                // meaningless, so recovered jobs run without one.
                deadline_at: None,
                params: JobParams {
                    stop: None,
                    ..spec.params
                },
                cache_key,
                label,
                payload: Some(Payload::Start(spec.kind.into_erased(portfolio))),
                shared,
                rebuild,
                attempt: 0,
                checkpoint_steps: record.checkpoint_steps,
                // Replay deterministically to the last durable barrier
                // before preemption checks resume — the cross-process
                // "restore from checkpoint".
                resume_floor: record.checkpoint_steps,
                first_wait: None,
                exec_seq: None,
                solve_so_far: Duration::ZERO,
                spec_bytes: Some(Arc::new(record.spec_bytes)),
                persist_seq: manifest.job_seq + 1,
            };
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            let mut queued = queued;
            queued.seq = q.next_seq;
            q.next_seq += 1;
            q.heap.push(queued);
            self.inner.depth.set(q.heap.len() as u64);
        }
        if persist_errors > 0 {
            self.inner
                .stats
                .lock()
                .expect("stats poisoned")
                .persist_errors += persist_errors;
        }
    }

    /// Handles of the jobs recovered from the durable store when this
    /// service started (empty without a [`ServiceConfig::store_dir`]).
    /// Recovered jobs replay deterministically to their last durable
    /// checkpoint barrier, so their eventual [`RunSummary`]s are
    /// bit-identical to an uninterrupted run.
    pub fn recovered(&self) -> &[JobHandle] {
        &self.recovered
    }

    /// Simulates abrupt process death (crash-recovery testing): stops
    /// the pool *without* draining the queue, without finishing
    /// outstanding handles, and without touching the durable store.
    /// Running checkpointed jobs stop at their next barrier — their
    /// latest durable record stays on disk — while monolithic jobs run
    /// to completion (there is no barrier to stop them at). A new
    /// service opened over the same [`ServiceConfig::store_dir`]
    /// recovers everything still in flight.
    pub fn kill(self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        // Drop does the rest: with the killed flag set it skips
        // aborting queued jobs and just stops and joins the workers.
    }

    /// A running service with `workers` worker threads.
    pub fn with_workers(workers: usize) -> SolverService {
        SolverService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
    }

    /// A service whose workers have not started yet: submissions queue
    /// up but nothing executes until [`SolverService::start`]. Used by
    /// tests needing deterministic queue ordering, and by embedders that
    /// want to pre-fill the queue.
    pub fn paused(workers: usize) -> SolverService {
        SolverService::new(ServiceConfig {
            workers,
            start_workers: false,
            ..ServiceConfig::default()
        })
    }

    /// Launches the worker threads (idempotent).
    pub fn start(&mut self) {
        if !self.threads.is_empty() {
            return;
        }
        for wid in 0..self.inner.workers {
            let inner = Arc::clone(&self.inner);
            self.threads.push(
                std::thread::Builder::new()
                    .name(format!("hyperspace-worker-{wid}"))
                    .spawn(move || worker_loop(inner, wid))
                    .expect("spawn worker thread"),
            );
        }
    }

    /// Submits a job; returns immediately with a handle. Invalid
    /// portfolio requests (CDCL members on a non-SAT workload — clause
    /// exchange needs a formula) are rejected here with
    /// [`JobOutcome::Failed`] rather than panicking a worker later.
    pub fn submit(&self, request: impl Into<JobRequest>) -> JobHandle {
        let request = request.into();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        // Count the submission before the job becomes poppable so no
        // stats snapshot can observe completed > submitted.
        self.inner.stats.lock().expect("stats poisoned").submitted += 1;
        let shared = JobShared::new(id);
        let handle = JobHandle {
            shared: Arc::clone(&shared),
        };
        if let Some(reason) = crate::job::validate_portfolio(&request.spec) {
            shared.finish(JobResult {
                id,
                outcome: JobOutcome::Failed(reason),
                from_cache: false,
                queue_wait: Duration::ZERO,
                solve_time: Duration::ZERO,
                worker: None,
                exec_seq: None,
            });
            self.inner.stats.lock().expect("stats poisoned").failed += 1;
            return handle;
        }
        let now = Instant::now();
        let cache_key = request.spec.cache_key();
        let label = request.spec.kind.label();
        self.inner.registry.record(
            Event::new(EventKind::Submitted, Some(id), i64::from(request.priority))
                .with_detail(label.clone()),
        );
        let portfolio =
            request.spec.params.portfolio.is_some() || request.spec.params.strategy.is_some();
        // Checkpoint restarts need a second copy of the job; build the
        // factory before the kind is consumed. Non-checkpointed jobs
        // never restart, so they skip the clone.
        let rebuild: Option<Box<dyn Fn() -> ErasedStackJob + Send>> =
            if request.spec.params.checkpoint.is_enabled() {
                request.spec.kind.try_clone().map(|kind| {
                    Box::new(move || {
                        kind.try_clone()
                            .expect("cloneable kinds stay cloneable")
                            .into_erased(portfolio)
                    }) as Box<dyn Fn() -> ErasedStackJob + Send>
                })
            } else {
                None
            };
        // Persistable = rebuildable + checkpoint-enabled + a workload
        // the spec grammar can serialise (closure-backed kinds cannot
        // cross a process boundary). Encoded once, here.
        let spec_bytes = if self.inner.store.is_some() && rebuild.is_some() {
            persist::encode_spec(request.priority, &request.spec.kind, &request.spec.params)
                .map(Arc::new)
        } else {
            None
        };
        let mut queued = QueuedJob {
            priority: request.priority,
            seq: 0, // assigned under the queue lock below
            submitted_at: now,
            deadline_at: request.deadline.map(|d| now + d),
            params: JobParams {
                // Any caller-provided stop handle is replaced by the
                // job's own (installed at execution time).
                stop: None,
                ..request.spec.params
            },
            cache_key,
            label,
            payload: Some(Payload::Start(request.spec.kind.into_erased(portfolio))),
            shared,
            rebuild,
            attempt: 0,
            checkpoint_steps: 0,
            resume_floor: 0,
            first_wait: None,
            exec_seq: None,
            solve_so_far: Duration::ZERO,
            spec_bytes,
            persist_seq: 0,
        };
        // Make the submission durable *before* it becomes poppable: a
        // process killed the instant submit() returns must still
        // recover this job.
        persist_job(&self.inner, &mut queued, None);
        let queued = queued;
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            if q.shutdown {
                drop(q);
                // Rejected, so the record written above is dead weight.
                if queued.spec_bytes.is_some() {
                    if let Some(store) = self.inner.store.as_ref() {
                        let _ = store.remove(id);
                    }
                }
                queued.shared.finish(JobResult {
                    id,
                    outcome: JobOutcome::Failed("service is shut down".into()),
                    from_cache: false,
                    queue_wait: Duration::ZERO,
                    solve_time: Duration::ZERO,
                    worker: None,
                    exec_seq: None,
                });
                self.inner.stats.lock().expect("stats poisoned").failed += 1;
                return handle;
            }
            let mut queued = queued;
            queued.seq = q.next_seq;
            q.next_seq += 1;
            q.heap.push(queued);
            self.inner.depth.set(q.heap.len() as u64);
        }
        self.inner.available.notify_one();
        handle
    }

    /// A cloneable live view of the service: per-job progress probes,
    /// the lifecycle flight recorder, queue-depth/steps-per-second
    /// dashboard series, JSON snapshots, and crash dumps. Observation
    /// is strictly read-only and never perturbs results — the
    /// bit-identity suite runs every backend with it on and off and
    /// asserts identical reports and checkpoint bytes.
    pub fn observe(&self) -> ServiceObserver {
        ServiceObserver::new(Arc::clone(&self.inner.registry))
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("queue poisoned").heap.len()
    }

    /// A snapshot of the service's operational metrics.
    pub fn stats(&self) -> ServiceStats {
        let queue_depth = self.queue_depth();
        let cache_entries = self.inner.cache.lock().expect("cache poisoned").len();
        let stats = self.inner.stats.lock().expect("stats poisoned");
        let mut jobs_by_kind: Vec<(String, u64)> = stats
            .jobs_by_kind
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        jobs_by_kind.sort();
        ServiceStats {
            workers: self.inner.workers,
            uptime: self.inner.started.elapsed(),
            submitted: stats.submitted,
            completed: stats.completed,
            timed_out: stats.timed_out,
            cancelled: stats.cancelled,
            failed: stats.failed,
            cache_hits: stats.cache_hits,
            preemptions: stats.preemptions,
            suspensions: stats.suspensions,
            restarts: stats.restarts,
            persisted: stats.persisted,
            recovered: stats.recovered,
            persist_errors: stats.persist_errors,
            cache_entries,
            queue_depth,
            queue_wait_us: stats.queue_wait_us.clone(),
            solve_time_us: stats.solve_time_us.clone(),
            per_worker_jobs: stats.per_worker_jobs.clone(),
            per_worker_busy: stats
                .per_worker_busy_us
                .iter()
                .map(|&us| Duration::from_micros(us))
                .collect(),
            jobs_by_kind,
        }
    }

    /// Blocks until every queued and running job has finished.
    ///
    /// # Panics
    ///
    /// On a [`paused`](SolverService::paused) service with jobs queued:
    /// no worker exists to drain them, so the wait could never end.
    pub fn drain(&self) {
        let mut q = self.inner.queue.lock().expect("queue poisoned");
        if self.threads.is_empty() && !(q.heap.is_empty() && q.running == 0) {
            // Release the lock before panicking so the Drop path can
            // still abort the queued jobs.
            drop(q);
            panic!(
                "drain() on a paused service with queued jobs would block forever; \
                 call start() first"
            );
        }
        while !(q.heap.is_empty() && q.running == 0) {
            q = self.inner.drained.wait(q).expect("queue poisoned");
        }
    }

    /// Graceful shutdown: waits for all accepted jobs to finish, stops
    /// the workers, and returns the final stats. On a paused service the
    /// workers are started first so queued jobs still complete.
    pub fn shutdown(mut self) -> ServiceStats {
        self.start();
        self.drain();
        let stats = self.stats();
        self.halt_workers();
        stats
    }

    /// Stops workers and joins them; queued jobs are *not* drained —
    /// the caller has already drained or aborted them.
    fn halt_workers(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            q.shutdown = true;
        }
        self.inner.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Marks every still-queued job cancelled (used on drop so no
    /// handle waits forever).
    fn abort_queued(&self) {
        if self.inner.killed.load(Ordering::SeqCst) {
            // Simulated process death: queued jobs keep their durable
            // records and their handles deliberately never finish —
            // recovery by the next service incarnation owns them now.
            return;
        }
        let jobs: Vec<QueuedJob> = {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            q.shutdown = true;
            self.inner.depth.set(0);
            std::mem::take(&mut q.heap).into_vec()
        };
        if jobs.is_empty() {
            return;
        }
        let mut stats = self.inner.stats.lock().expect("stats poisoned");
        for job in jobs {
            stats.cancelled += 1;
            // A graceful shutdown resolves the job as cancelled; its
            // durable record must not resurrect it in the next
            // incarnation (only a kill leaves records behind).
            if job.spec_bytes.is_some() {
                if let Some(store) = self.inner.store.as_ref() {
                    let _ = store.remove(job.shared.id);
                }
            }
            self.inner
                .registry
                .record(Event::new(EventKind::Cancelled, Some(job.shared.id), 0));
            // A job cancelled while queued still waited in the queue:
            // its wait belongs in the distribution like everyone
            // else's (recorded here unless a worker already recorded
            // it at first pickup).
            let queue_wait = job.first_wait.unwrap_or_else(|| job.submitted_at.elapsed());
            if job.first_wait.is_none() {
                stats.queue_wait_us.record(saturating_micros(queue_wait));
            }
            job.shared.finish(JobResult {
                id: job.shared.id,
                outcome: JobOutcome::Cancelled,
                from_cache: false,
                queue_wait,
                solve_time: job.solve_so_far,
                worker: None,
                exec_seq: job.exec_seq,
            });
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.abort_queued();
        self.halt_workers();
    }
}

fn worker_loop(inner: Arc<ServiceInner>, wid: usize) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue poisoned");
            loop {
                if inner.killed.load(Ordering::SeqCst) {
                    // Simulated process death: stop without popping —
                    // whatever is queued belongs to recovery.
                    return;
                }
                if let Some(job) = q.heap.pop() {
                    q.running += 1;
                    inner.depth.set(q.heap.len() as u64);
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner.available.wait(q).expect("queue poisoned");
            }
        };
        process_job(&inner, wid, job);
        {
            let mut q = inner.queue.lock().expect("queue poisoned");
            q.running -= 1;
        }
        inner.drained.notify_all();
    }
}

/// Whether the queue holds work that should preempt a running job of
/// `priority` at its next checkpoint barrier. Strictly higher priority
/// only: equal-priority work waits its FIFO turn, so two long jobs can
/// never ping-pong each other.
fn higher_priority_waiting(inner: &ServiceInner, priority: i32) -> bool {
    inner
        .queue
        .lock()
        .expect("queue poisoned")
        .heap
        .peek()
        .is_some_and(|job| job.priority > priority)
}

/// Puts a suspended or restarted job back into the priority queue. With
/// `to_back` false (preemption, crash restarts) it keeps its original
/// submission `seq` and so resumes ahead of later arrivals at the same
/// priority; with `to_back` true (explicit [`JobHandle::suspend`]) it
/// takes a fresh `seq` and re-enters at the back of its priority class,
/// letting already-queued peers overtake. On a shutting-down service the
/// job is finished as cancelled instead, so no handle waits forever.
fn requeue(inner: &ServiceInner, mut job: QueuedJob, to_back: bool) {
    {
        let mut q = inner.queue.lock().expect("queue poisoned");
        if !q.shutdown {
            if to_back {
                job.seq = q.next_seq;
                q.next_seq += 1;
            }
            q.heap.push(job);
            inner.depth.set(q.heap.len() as u64);
            drop(q);
            inner.available.notify_one();
            return;
        }
    }
    inner.stats.lock().expect("stats poisoned").cancelled += 1;
    // Resolved as cancelled at shutdown: drop the durable record so the
    // next incarnation does not resurrect an already-answered job.
    if job.spec_bytes.is_some() {
        if let Some(store) = inner.store.as_ref() {
            let _ = store.remove(job.shared.id);
        }
    }
    job.shared.finish(JobResult {
        id: job.shared.id,
        outcome: JobOutcome::Cancelled,
        from_cache: false,
        queue_wait: job.first_wait.unwrap_or_default(),
        solve_time: job.solve_so_far,
        worker: None,
        exec_seq: job.exec_seq,
    });
}

/// Writes `job`'s current durable record — its pre-encoded spec, its
/// progress floor, and (when the slice's state is byte-serialisable)
/// its checkpoint bytes — and bumps the persist sequence. No-op for
/// jobs without a store or spec encoding. Persist failures are counted
/// and recorded, never fatal: the job keeps running, it just loses
/// crash durability back to its previous record.
fn persist_job(inner: &ServiceInner, job: &mut QueuedJob, checkpoint: Option<&[u8]>) {
    let (Some(store), Some(spec)) = (inner.store.as_ref(), job.spec_bytes.as_ref()) else {
        return;
    };
    let payload = persist::encode_record(spec, job.checkpoint_steps, checkpoint);
    // The store's put is temp-file + fsync + rename; attribute its wall
    // time to the job's fsync phase and the service-wide persist span.
    // Events route through the probe so persist/recover counters tick.
    let probe = inner.registry.probe(job.shared.id, &job.label);
    let started = Instant::now();
    let result = store.put(job.shared.id, job.persist_seq, &payload);
    let nanos = saturating_nanos(started.elapsed());
    probe.on_phase(0, Phase::Fsync, nanos);
    inner.registry.span("store.persist").record(nanos);
    match result {
        Ok(()) => {
            job.persist_seq += 1;
            inner.stats.lock().expect("stats poisoned").persisted += 1;
            probe.on_event(&Event::new(
                EventKind::Persisted,
                Some(job.shared.id),
                saturating_i64(job.checkpoint_steps),
            ));
        }
        Err(err) => {
            inner.stats.lock().expect("stats poisoned").persist_errors += 1;
            probe.on_event(
                &Event::new(EventKind::Persisted, Some(job.shared.id), -1)
                    .with_detail(format!("persist failed: {err}")),
            );
        }
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job panicked".into())
}

/// A worker crashed (panicked) mid-solve. If the job carries a rebuild
/// factory and restart budget, re-queue a fresh copy that will replay
/// deterministically to the last checkpoint barrier (`resume_floor`)
/// and continue — returning `None`. Otherwise hand the job back with
/// the failure message.
fn crash(inner: &ServiceInner, mut job: QueuedJob, message: String) -> Option<(QueuedJob, String)> {
    // Record the crash, then preserve the flight recorder's tail so the
    // dump includes the crash event itself and the lead-up to it.
    let id = job.shared.id;
    inner.registry.record(
        Event::new(
            EventKind::Crashed,
            Some(id),
            saturating_i64(job.checkpoint_steps),
        )
        .with_detail(message.clone()),
    );
    inner.registry.dump_crash(id, message.clone());
    if let Some(rebuild) = job
        .rebuild
        .as_ref()
        .filter(|_| job.attempt < inner.max_restarts)
    {
        let fresh = rebuild();
        job.attempt += 1;
        job.resume_floor = job.checkpoint_steps;
        // The restart replays from step zero and re-times everything up
        // to the floor; keeping the pre-crash slice time would count
        // every replayed step twice in the job's reported solve time.
        job.solve_so_far = Duration::ZERO;
        job.payload = Some(Payload::Start(fresh));
        job.shared.set_queued();
        inner.stats.lock().expect("stats poisoned").restarts += 1;
        inner.registry.record(Event::new(
            EventKind::Restarted,
            Some(id),
            saturating_i64(job.resume_floor),
        ));
        requeue(inner, job, false);
        None
    } else {
        Some((job, message))
    }
}

/// Maps a finished run's summary to a job outcome, caching completed
/// results.
fn summary_outcome(inner: &ServiceInner, job: &QueuedJob, summary: RunSummary) -> JobOutcome {
    match summary.outcome {
        RunOutcome::Stopped => {
            if job.shared.cancelled.load(Ordering::SeqCst) {
                JobOutcome::Cancelled
            } else {
                JobOutcome::TimedOut
            }
        }
        _ => {
            if let Some(key) = &job.cache_key {
                inner
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(key, summary.clone());
            }
            JobOutcome::Completed(summary)
        }
    }
}

fn process_job(inner: &ServiceInner, wid: usize, mut job: QueuedJob) {
    // One timestamp anchors both measurements: everything before it is
    // queue wait, everything after it is solve time. (Taking separate
    // `elapsed()` readings here used to leak the stats-lock acquisition
    // into neither/both, depending on contention.)
    let picked_up = Instant::now();
    let wait_now = picked_up.saturating_duration_since(job.submitted_at);
    if job.first_wait.is_none() {
        // First pickup: this is the job's queue wait — later re-queues
        // from preemption are scheduling churn, not queue wait.
        job.first_wait = Some(wait_now);
        job.exec_seq = Some(inner.exec_seq.fetch_add(1, Ordering::SeqCst));
        inner
            .stats
            .lock()
            .expect("stats poisoned")
            .queue_wait_us
            .record(saturating_micros(wait_now));
    }

    let mut from_cache = false;
    let mut executed = false;
    let outcome = 'decide: {
        if job.shared.cancelled.load(Ordering::SeqCst) {
            break 'decide JobOutcome::Cancelled;
        }
        if job.deadline_at.is_some_and(|d| picked_up >= d) {
            // Expired while queued: reject without occupying the worker.
            break 'decide JobOutcome::TimedOut;
        }
        if matches!(job.payload, Some(Payload::Start(_))) {
            if let Some(hit) = job
                .cache_key
                .as_ref()
                .and_then(|key| inner.cache.lock().expect("cache poisoned").get(key))
            {
                from_cache = true;
                break 'decide JobOutcome::Completed(hit);
            }
        }

        job.shared.set_running();
        executed = true;
        inner.registry.record(Event::new(
            EventKind::Started,
            Some(job.shared.id),
            saturating_i64(wid as u64),
        ));
        let mut slice: Box<dyn RunSlice> = match job.payload.take().expect("payload present") {
            Payload::Resume(slice) => slice,
            Payload::Start(erased) => {
                let mut params = job.params.clone();
                // The per-job probe rides with the engine for its whole
                // life (restarts re-use the same probe: step counters
                // only move forward through deterministic replay).
                let probe = inner.registry.probe(job.shared.id, &job.label);
                params.obs = ObsHandle::new(probe as Arc<dyn Observer>);
                let mut stop = job.shared.stop.clone();
                if let Some(deadline) = job.deadline_at {
                    // Absolute, so a resumed job keeps its original
                    // budget: the handle travels with the suspended sim.
                    stop = stop.until(deadline);
                }
                params.stop = Some(stop);
                let started = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    erased.start(&params)
                }));
                match started {
                    Ok(StartedJob::Finished(summary)) => {
                        break 'decide summary_outcome(inner, &job, summary);
                    }
                    Ok(StartedJob::Sliced(slice)) => slice,
                    Err(panic) => {
                        let busy = picked_up.elapsed();
                        match crash(inner, job, panic_message(panic)) {
                            None => {
                                // Restarting from the checkpoint. The
                                // crashed attempt still occupied this
                                // worker; the terminal accounting below
                                // never runs for it, so bill the busy
                                // time here.
                                inner
                                    .stats
                                    .lock()
                                    .expect("stats poisoned")
                                    .per_worker_busy_us[wid] += saturating_micros(busy);
                                return;
                            }
                            Some((returned, msg)) => {
                                job = returned;
                                break 'decide JobOutcome::Failed(msg);
                            }
                        }
                    }
                }
            }
        };

        // The slice loop: advance one checkpoint interval at a time; at
        // every barrier honour cancellation, explicit suspension, and
        // priority preemption.
        loop {
            let stepped =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || slice.run_slice()));
            match stepped {
                Err(panic) => {
                    let busy = picked_up.elapsed();
                    match crash(inner, job, panic_message(panic)) {
                        None => {
                            // Restarting from the checkpoint; bill the
                            // crashed attempt's busy time (see above).
                            inner
                                .stats
                                .lock()
                                .expect("stats poisoned")
                                .per_worker_busy_us[wid] += saturating_micros(busy);
                            return;
                        }
                        Some((returned, msg)) => {
                            job = returned;
                            break 'decide JobOutcome::Failed(msg);
                        }
                    }
                }
                Ok(SliceOutcome::Finished(summary)) => {
                    break 'decide summary_outcome(inner, &job, summary);
                }
                Ok(SliceOutcome::Yielded(next)) => {
                    slice = next;
                    job.checkpoint_steps = slice.steps_done();
                    inner.registry.record(Event::new(
                        EventKind::SliceYielded,
                        Some(job.shared.id),
                        saturating_i64(job.checkpoint_steps),
                    ));
                    if job.checkpoint_steps > job.resume_floor {
                        // A new durable barrier (replay below the floor
                        // re-derives state the store already has).
                        persist_job(inner, &mut job, slice.checkpoint_bytes().as_deref());
                    }
                    if inner.killed.load(Ordering::SeqCst) {
                        // Simulated process death: stop here, leaving
                        // the barrier record durable and the handle
                        // unfinished — recovery owns this job now.
                        return;
                    }
                    if job.shared.cancelled.load(Ordering::SeqCst) {
                        break 'decide JobOutcome::Cancelled;
                    }
                    if slice.steps_done() < job.resume_floor {
                        // Crash recovery: replay to the last checkpoint
                        // before anything may interleave again.
                        continue;
                    }
                    let suspend = job.shared.suspend.swap(false, Ordering::SeqCst);
                    if !suspend && !higher_priority_waiting(inner, job.priority) {
                        continue;
                    }
                    // Preempted: park the live run back in the queue and
                    // free this worker for the higher-priority job. One
                    // reading of the clock feeds both the worker's busy
                    // counter and the job's accumulated solve time —
                    // separate `elapsed()` calls drifted apart.
                    let busy = picked_up.elapsed();
                    {
                        let mut stats = inner.stats.lock().expect("stats poisoned");
                        if suspend {
                            stats.suspensions += 1;
                        } else {
                            stats.preemptions += 1;
                        }
                        stats.per_worker_busy_us[wid] += saturating_micros(busy);
                    }
                    job.solve_so_far += busy;
                    job.payload = Some(Payload::Resume(slice));
                    job.shared.set_queued();
                    inner.registry.record(Event::new(
                        if suspend {
                            EventKind::Suspended
                        } else {
                            EventKind::Preempted
                        },
                        Some(job.shared.id),
                        saturating_i64(job.checkpoint_steps),
                    ));
                    requeue(inner, job, suspend);
                    return;
                }
            }
        }
    };

    // One reading of the clock for the final attempt: both the job's
    // total solve time and the worker's busy counter are derived from
    // it, so they cannot drift apart.
    let ran_for = picked_up.elapsed();
    let solve_time = if executed {
        job.solve_so_far + ran_for
    } else {
        job.solve_so_far
    };
    {
        let mut stats = inner.stats.lock().expect("stats poisoned");
        match &outcome {
            JobOutcome::Completed(_) => {
                stats.completed += 1;
                if from_cache {
                    stats.cache_hits += 1;
                }
            }
            JobOutcome::TimedOut => stats.timed_out += 1,
            JobOutcome::Cancelled => stats.cancelled += 1,
            JobOutcome::Failed(_) => stats.failed += 1,
        }
        if !from_cache && solve_time > Duration::ZERO {
            stats.solve_time_us.record(saturating_micros(solve_time));
        }
        stats.per_worker_jobs[wid] += 1;
        if executed {
            stats.per_worker_busy_us[wid] += saturating_micros(ran_for);
        }
        *stats.jobs_by_kind.entry(job.label.clone()).or_insert(0) += 1;
    }
    // Terminal lifecycle event (failures were already recorded as
    // `Crashed`, with the flight-recorder tail dumped, in `crash`).
    let terminal = match &outcome {
        JobOutcome::Completed(_) => Some(EventKind::Completed),
        JobOutcome::TimedOut => Some(EventKind::TimedOut),
        JobOutcome::Cancelled => Some(EventKind::Cancelled),
        JobOutcome::Failed(_) => None,
    };
    if let Some(kind) = terminal {
        inner.registry.record(Event::new(
            kind,
            Some(job.shared.id),
            saturating_i64(saturating_micros(solve_time)),
        ));
    }

    // A terminal job no longer needs a durable record.
    if job.spec_bytes.is_some() {
        if let Some(store) = inner.store.as_ref() {
            let _ = store.remove(job.shared.id);
        }
    }

    job.shared.finish(JobResult {
        id: job.shared.id,
        outcome,
        from_cache,
        queue_wait: job.first_wait.unwrap_or(wait_now),
        solve_time,
        worker: Some(wid),
        exec_seq: job.exec_seq,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec};
    use hyperspace_core::TopologySpec;

    fn small(kind: JobKind) -> JobRequest {
        JobRequest::new(JobSpec::new(kind).topology(TopologySpec::Torus2D { w: 4, h: 4 }))
    }

    #[test]
    fn sum_job_completes() {
        let service = SolverService::with_workers(2);
        let result = service.submit(small(JobKind::sum(10))).wait();
        let summary = result.outcome.summary().expect("completed");
        assert_eq!(summary.result.as_deref(), Some("55"));
        assert!(!result.from_cache);
        assert_eq!(service.stats().completed, 1);
    }

    #[test]
    fn identical_jobs_hit_the_cache() {
        let service = SolverService::with_workers(1);
        let first = service.submit(small(JobKind::fib(10))).wait();
        let second = service.submit(small(JobKind::fib(10))).wait();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(
            first.outcome.summary().unwrap(),
            second.outcome.summary().unwrap()
        );
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn paused_service_executes_by_priority() {
        let mut service = SolverService::paused(1);
        let low = service.submit(small(JobKind::sum(5)).priority(-1));
        let high = service.submit(small(JobKind::sum(6)).priority(10));
        let mid = service.submit(small(JobKind::sum(7)).priority(3));
        service.start();
        let (low, high, mid) = (low.wait(), high.wait(), mid.wait());
        assert!(high.exec_seq < mid.exec_seq, "high before mid");
        assert!(mid.exec_seq < low.exec_seq, "mid before low");
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let service = SolverService::with_workers(3);
        let handles: Vec<_> = (1..=12)
            .map(|n| service.submit(small(JobKind::sum(n))))
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 12);
        for h in handles {
            assert!(h.try_result().expect("finished").outcome.is_completed());
        }
    }

    #[test]
    fn result_cache_is_bounded_and_evicts_fifo() {
        let mut cache = ResultCache::new(2);
        let summary = |n: u64| RunSummary {
            result: Some(n.to_string()),
            outcome: RunOutcome::Halted,
            steps: n,
            computation_time: n,
            total_sent: 0,
            total_delivered: 0,
            activations_started: 0,
            activations_completed: 0,
            nodes_pruned: 0,
            best_incumbent: None,
        };
        cache.insert("a", summary(1));
        cache.insert("b", summary(2));
        assert_eq!(cache.len(), 2);
        cache.insert("c", summary(3)); // evicts "a"
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some() && cache.get("c").is_some());
        // Re-inserting an existing key neither grows nor reorders.
        cache.insert("b", summary(9));
        assert_eq!(cache.get("b").unwrap().steps, 2);
        // Capacity 0 disables caching.
        let mut off = ResultCache::new(0);
        off.insert("x", summary(1));
        assert_eq!(off.len(), 0);
    }

    #[test]
    fn cache_capacity_zero_disables_hits_end_to_end() {
        let service = SolverService::new(ServiceConfig {
            workers: 1,
            start_workers: true,
            cache_capacity: 0,
            max_restarts: 1,
            ..ServiceConfig::default()
        });
        let first = service.submit(small(JobKind::fib(9))).wait();
        let second = service.submit(small(JobKind::fib(9))).wait();
        assert!(!first.from_cache && !second.from_cache);
        assert_eq!(service.stats().cache_hits, 0);
    }

    #[test]
    fn shutdown_on_a_paused_service_starts_workers_and_drains() {
        let service = SolverService::paused(2);
        let handle = service.submit(small(JobKind::sum(8)));
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert!(handle.try_result().expect("drained").outcome.is_completed());
    }

    #[test]
    #[should_panic(expected = "would block forever")]
    fn drain_on_a_paused_service_with_queued_jobs_panics() {
        let service = SolverService::paused(1);
        let _handle = service.submit(small(JobKind::sum(8)));
        service.drain();
    }

    #[test]
    fn stats_never_show_more_finished_than_submitted() {
        let service = SolverService::with_workers(4);
        let handles: Vec<_> = (0..40u64)
            .map(|n| service.submit(small(JobKind::sum(n % 7))))
            .collect();
        // Sample snapshots while jobs are in flight.
        for _ in 0..200 {
            let s = service.stats();
            assert!(
                s.finished() <= s.submitted,
                "finished {} > submitted {}",
                s.finished(),
                s.submitted
            );
        }
        for h in handles {
            h.wait();
        }
    }

    #[test]
    fn cdcl_members_on_non_sat_jobs_are_rejected_at_submit() {
        use hyperspace_core::PortfolioSpec;
        let service = SolverService::with_workers(1);
        let spec = JobSpec::new(JobKind::fib(10))
            .topology(TopologySpec::Torus2D { w: 4, h: 4 })
            .portfolio(PortfolioSpec::diversified_sat(6)); // members 4+ are CDCL
        let result = service.submit(spec).wait();
        match result.outcome {
            JobOutcome::Failed(reason) => {
                assert!(reason.contains("CDCL"), "{reason}");
                assert!(reason.contains("fib"), "{reason}");
            }
            other => panic!("expected a submit-time rejection, got {other:?}"),
        }
        assert!(result.worker.is_none(), "never reached a worker");
        assert_eq!(service.stats().failed, 1);
        // A SAT job with the same members is accepted and completes.
        let ok = service
            .submit(
                JobSpec::new(JobKind::sat(hyperspace_sat::gen::uf20_91(2)))
                    .topology(TopologySpec::Torus2D { w: 4, h: 4 })
                    .portfolio(PortfolioSpec::diversified_sat(6)),
            )
            .wait();
        assert!(ok.outcome.is_completed());
    }

    #[test]
    fn dropping_the_service_cancels_queued_jobs() {
        let service = SolverService::paused(1);
        let handle = service.submit(small(JobKind::sum(5)));
        let other = service.submit(small(JobKind::sum(6)));
        // A waiter already blocked on the handle must be woken by the
        // drop-path cancellation, not left hanging forever.
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait())
        };
        let inner = Arc::clone(&service.inner);
        drop(service);
        let woken = waiter.join().expect("waiter thread");
        assert_eq!(woken.outcome, JobOutcome::Cancelled);
        let late = handle.wait();
        assert_eq!(late.outcome, JobOutcome::Cancelled);
        assert_eq!(other.wait().outcome, JobOutcome::Cancelled);
        // Cancelled-in-queue jobs still record their queue wait.
        let stats = inner.stats.lock().expect("stats poisoned");
        assert_eq!(stats.cancelled, 2);
        assert_eq!(
            stats.queue_wait_us.count(),
            2,
            "both aborted jobs must land in the queue-wait histogram"
        );
    }

    #[test]
    fn observe_exposes_probes_and_lifecycle_events() {
        let service = SolverService::with_workers(1);
        let observer = service.observe();
        let result = service.submit(small(JobKind::sum(12))).wait();
        assert!(result.outcome.is_completed());
        service.drain();
        // The job's probe saw engine steps from inside the solve loop.
        let probes = observer.probes();
        assert_eq!(probes.len(), 1);
        assert!(probes[0].steps() > 0, "probe fed from the engine");
        assert!(probes[0].delivered() > 0);
        assert_eq!(observer.total_steps(), probes[0].steps());
        // The flight recorder holds the full lifecycle in order.
        let events = observer.registry().recorder().snapshot();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        use hyperspace_obs::EventKind::*;
        assert!(kinds.starts_with(&[Submitted, Started]), "{kinds:?}");
        assert_eq!(*kinds.last().unwrap(), Completed);
        assert!(events.iter().all(|e| e.job == Some(result.id)));
        // Queue is empty again; the snapshot is valid JSON with the
        // documented sections.
        assert_eq!(observer.queue_depth(), 0);
        let json = observer.snapshot().to_string();
        for key in ["counters", "gauges", "jobs", "events", "crashes"] {
            assert!(json.contains(&format!("\"{key}\"")), "{key} in {json}");
        }
    }

    #[test]
    fn submit_after_shutdown_fails_cleanly() {
        let mut service = SolverService::paused(1);
        service.start();
        let inner = Arc::clone(&service.inner);
        drop(service);
        let q = inner.queue.lock().unwrap();
        assert!(q.shutdown);
    }

    #[test]
    fn preempt_then_finish_records_each_job_exactly_once() {
        use crate::handle::JobStatus;
        use hyperspace_core::CheckpointSpec;
        let service = SolverService::with_workers(1);
        let long = service.submit(
            JobRequest::new(
                JobSpec::new(JobKind::fib(40))
                    .topology(TopologySpec::Torus2D { w: 4, h: 4 })
                    .checkpoint(CheckpointSpec::every(200)),
            )
            .priority(-5),
        );
        while long.status() != JobStatus::Running {
            std::thread::yield_now();
        }
        // With one worker, the quick job can only run if the long job
        // is preempted at a checkpoint barrier.
        let quick = service.submit(small(JobKind::sum(6)).priority(50));
        assert!(quick.wait().outcome.is_completed());
        long.cancel();
        assert_eq!(long.wait().outcome, JobOutcome::Cancelled);
        let stats = service.stats();
        assert!(stats.preemptions >= 1, "long job preempted at a barrier");
        // The regression this pins: a preempted job's re-queues are
        // scheduling churn, not fresh queue waits, and its slices are
        // one solve — each job lands in each histogram exactly once.
        assert_eq!(stats.queue_wait_us.count(), 2, "{stats}");
        assert_eq!(stats.solve_time_us.count(), 2, "{stats}");
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hyperspace-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &std::path::Path, start_workers: bool) -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            start_workers,
            store_dir: Some(dir.to_path_buf()),
            ..ServiceConfig::default()
        }
    }

    /// A small checkpoint-enabled job — the durable store only persists
    /// jobs that can restart from a checkpoint barrier.
    fn durable_job(n: u64) -> JobRequest {
        use hyperspace_core::CheckpointSpec;
        JobRequest::new(
            JobSpec::new(JobKind::sum(n))
                .topology(TopologySpec::Torus2D { w: 4, h: 4 })
                .checkpoint(CheckpointSpec::every(64)),
        )
    }

    #[test]
    fn submitted_jobs_are_durable_until_terminal() {
        let dir = store_dir("durable");
        let mut service = SolverService::new(durable_config(&dir, false));
        let handle = service.submit(durable_job(30));
        // Persisted at submission, before any worker could touch it.
        let store = JobStore::open(&dir).expect("open");
        assert!(store.get(handle.id()).expect("get").is_some());
        service.start();
        assert!(handle.wait().outcome.is_completed());
        service.drain();
        // A terminal job no longer needs its record.
        assert!(store.get(handle.id()).expect("get").is_none());
        assert!(service.stats().persisted >= 1);
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_service_recovers_queued_jobs_bit_identically() {
        let dir = store_dir("recover");
        // Reference: the same job on a store-less service.
        let reference = SolverService::with_workers(1).submit(durable_job(9)).wait();
        let expected = reference.outcome.summary().expect("completed").clone();

        let service = SolverService::new(durable_config(&dir, false));
        let handle = service.submit(durable_job(9).priority(2));
        let id = handle.id();
        service.kill();
        // The kill left the handle unfinished and the record on disk.
        assert!(handle.try_result().is_none());

        let revived = SolverService::new(durable_config(&dir, true));
        let recovered = revived.recovered().to_vec();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].id(), id, "recovered under its original id");
        let result = recovered[0].wait();
        assert_eq!(
            result.outcome.summary().expect("completed"),
            &expected,
            "recovered summary is bit-identical to an uninterrupted run"
        );
        assert_eq!(revived.stats().recovered, 1);
        revived.drain();
        let store = JobStore::open(&dir).expect("open");
        assert!(store.get(id).expect("get").is_none(), "record retired");
        drop(revived);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
