//! [`SolverService`]: the multi-tenant worker pool.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hyperspace_core::{ErasedStackJob, JobParams, RunSummary};
use hyperspace_sim::RunOutcome;

use crate::handle::{JobHandle, JobShared};
use crate::job::{JobOutcome, JobRequest, JobResult};
use crate::stats::{ServiceStats, StatsInner};

/// A job as it sits in the priority queue.
struct QueuedJob {
    priority: i32,
    seq: u64,
    submitted_at: Instant,
    deadline_at: Option<Instant>,
    params: JobParams,
    job: ErasedStackJob,
    cache_key: Option<String>,
    label: String,
    shared: Arc<JobShared>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    /// Max-heap order: higher priority first; FIFO within a priority.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct QueueInner {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    running: usize,
    shutdown: bool,
}

/// Bounded FIFO result cache: when full, the oldest entry is evicted.
/// Bounded because the service is long-running and keys embed full
/// problem renderings — an unbounded map would grow without limit under
/// a stream of distinct jobs.
struct ResultCache {
    map: HashMap<String, RunSummary>,
    order: std::collections::VecDeque<String>,
    capacity: usize,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity,
        }
    }

    fn get(&self, key: &str) -> Option<RunSummary> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: &str, summary: RunSummary) {
        if self.capacity == 0 {
            return;
        }
        if self.map.contains_key(key) {
            return; // identical computation; keep the original entry
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.map.remove(&oldest);
                }
                None => break,
            }
        }
        self.map.insert(key.to_string(), summary);
        self.order.push_back(key.to_string());
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

struct ServiceInner {
    queue: Mutex<QueueInner>,
    /// Signalled on push and on shutdown; workers wait here.
    available: Condvar,
    /// Signalled when a worker finishes a job; drain waiters wait here.
    drained: Condvar,
    cache: Mutex<ResultCache>,
    stats: Mutex<StatsInner>,
    next_id: AtomicU64,
    exec_seq: AtomicU64,
    started: Instant,
    workers: usize,
}

/// Configuration of a [`SolverService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker pool size.
    pub workers: usize,
    /// Whether worker threads start immediately
    /// ([`SolverService::start`] launches them otherwise).
    pub start_workers: bool,
    /// Maximum entries in the result cache; the oldest entry is evicted
    /// at capacity. `0` disables caching entirely.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 16),
            start_workers: true,
            cache_capacity: 4096,
        }
    }
}

/// A multi-tenant solver service: persistent worker threads pull typed
/// jobs off a shared priority queue, assemble the requested five-layer
/// stack, and solve under the job's deadline; identical submissions are
/// served from a keyed result cache.
///
/// Workers outlive jobs (the pool is the long-lived "machine" of §VII's
/// repertoire vision); per-job machine configuration — topology, mapper,
/// layer-4 cancellation — travels with each [`JobRequest`], so tenants
/// with different workloads share the same pool.
///
/// ```
/// use hyperspace_service::{JobKind, SolverService};
///
/// let service = SolverService::with_workers(2);
/// let job = service.submit(JobKind::sum(100));
/// let result = job.wait();
/// let summary = result.outcome.summary().expect("completed");
/// assert_eq!(summary.result.as_deref(), Some("5050"));
/// ```
pub struct SolverService {
    inner: Arc<ServiceInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl SolverService {
    /// A service with the given configuration.
    pub fn new(cfg: ServiceConfig) -> SolverService {
        assert!(cfg.workers >= 1, "a service needs at least one worker");
        let inner = Arc::new(ServiceInner {
            queue: Mutex::new(QueueInner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                running: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            drained: Condvar::new(),
            cache: Mutex::new(ResultCache::new(cfg.cache_capacity)),
            stats: Mutex::new(StatsInner::new(cfg.workers)),
            next_id: AtomicU64::new(0),
            exec_seq: AtomicU64::new(0),
            started: Instant::now(),
            workers: cfg.workers,
        });
        let mut service = SolverService {
            inner,
            threads: Vec::new(),
        };
        if cfg.start_workers {
            service.start();
        }
        service
    }

    /// A running service with `workers` worker threads.
    pub fn with_workers(workers: usize) -> SolverService {
        SolverService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
    }

    /// A service whose workers have not started yet: submissions queue
    /// up but nothing executes until [`SolverService::start`]. Used by
    /// tests needing deterministic queue ordering, and by embedders that
    /// want to pre-fill the queue.
    pub fn paused(workers: usize) -> SolverService {
        SolverService::new(ServiceConfig {
            workers,
            start_workers: false,
            ..ServiceConfig::default()
        })
    }

    /// Launches the worker threads (idempotent).
    pub fn start(&mut self) {
        if !self.threads.is_empty() {
            return;
        }
        for wid in 0..self.inner.workers {
            let inner = Arc::clone(&self.inner);
            self.threads.push(
                std::thread::Builder::new()
                    .name(format!("hyperspace-worker-{wid}"))
                    .spawn(move || worker_loop(inner, wid))
                    .expect("spawn worker thread"),
            );
        }
    }

    /// Submits a job; returns immediately with a handle. Invalid
    /// portfolio requests (CDCL members on a non-SAT workload — clause
    /// exchange needs a formula) are rejected here with
    /// [`JobOutcome::Failed`] rather than panicking a worker later.
    pub fn submit(&self, request: impl Into<JobRequest>) -> JobHandle {
        let request = request.into();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        // Count the submission before the job becomes poppable so no
        // stats snapshot can observe completed > submitted.
        self.inner.stats.lock().expect("stats poisoned").submitted += 1;
        let shared = JobShared::new(id);
        let handle = JobHandle {
            shared: Arc::clone(&shared),
        };
        if let Some(reason) = crate::job::validate_portfolio(&request.spec) {
            shared.finish(JobResult {
                id,
                outcome: JobOutcome::Failed(reason),
                from_cache: false,
                queue_wait: Duration::ZERO,
                solve_time: Duration::ZERO,
                worker: None,
                exec_seq: None,
            });
            self.inner.stats.lock().expect("stats poisoned").failed += 1;
            return handle;
        }
        let now = Instant::now();
        let cache_key = request.spec.cache_key();
        let label = request.spec.kind.label();
        let portfolio = request.spec.params.portfolio.is_some();
        let queued = QueuedJob {
            priority: request.priority,
            seq: 0, // assigned under the queue lock below
            submitted_at: now,
            deadline_at: request.deadline.map(|d| now + d),
            params: JobParams {
                // Any caller-provided stop handle is replaced by the
                // job's own (installed at execution time).
                stop: None,
                ..request.spec.params
            },
            cache_key,
            label,
            job: request.spec.kind.into_erased(portfolio),
            shared,
        };
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            if q.shutdown {
                drop(q);
                queued.shared.finish(JobResult {
                    id,
                    outcome: JobOutcome::Failed("service is shut down".into()),
                    from_cache: false,
                    queue_wait: Duration::ZERO,
                    solve_time: Duration::ZERO,
                    worker: None,
                    exec_seq: None,
                });
                self.inner.stats.lock().expect("stats poisoned").failed += 1;
                return handle;
            }
            let mut queued = queued;
            queued.seq = q.next_seq;
            q.next_seq += 1;
            q.heap.push(queued);
        }
        self.inner.available.notify_one();
        handle
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("queue poisoned").heap.len()
    }

    /// A snapshot of the service's operational metrics.
    pub fn stats(&self) -> ServiceStats {
        let queue_depth = self.queue_depth();
        let cache_entries = self.inner.cache.lock().expect("cache poisoned").len();
        let stats = self.inner.stats.lock().expect("stats poisoned");
        let mut jobs_by_kind: Vec<(String, u64)> = stats
            .jobs_by_kind
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        jobs_by_kind.sort();
        ServiceStats {
            workers: self.inner.workers,
            uptime: self.inner.started.elapsed(),
            submitted: stats.submitted,
            completed: stats.completed,
            timed_out: stats.timed_out,
            cancelled: stats.cancelled,
            failed: stats.failed,
            cache_hits: stats.cache_hits,
            cache_entries,
            queue_depth,
            queue_wait_us: stats.queue_wait_us.clone(),
            solve_time_us: stats.solve_time_us.clone(),
            per_worker_jobs: stats.per_worker_jobs.clone(),
            per_worker_busy: stats
                .per_worker_busy_us
                .iter()
                .map(|&us| Duration::from_micros(us))
                .collect(),
            jobs_by_kind,
        }
    }

    /// Blocks until every queued and running job has finished.
    ///
    /// # Panics
    ///
    /// On a [`paused`](SolverService::paused) service with jobs queued:
    /// no worker exists to drain them, so the wait could never end.
    pub fn drain(&self) {
        let mut q = self.inner.queue.lock().expect("queue poisoned");
        if self.threads.is_empty() && !(q.heap.is_empty() && q.running == 0) {
            // Release the lock before panicking so the Drop path can
            // still abort the queued jobs.
            drop(q);
            panic!(
                "drain() on a paused service with queued jobs would block forever; \
                 call start() first"
            );
        }
        while !(q.heap.is_empty() && q.running == 0) {
            q = self.inner.drained.wait(q).expect("queue poisoned");
        }
    }

    /// Graceful shutdown: waits for all accepted jobs to finish, stops
    /// the workers, and returns the final stats. On a paused service the
    /// workers are started first so queued jobs still complete.
    pub fn shutdown(mut self) -> ServiceStats {
        self.start();
        self.drain();
        let stats = self.stats();
        self.halt_workers();
        stats
    }

    /// Stops workers and joins them; queued jobs are *not* drained —
    /// the caller has already drained or aborted them.
    fn halt_workers(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            q.shutdown = true;
        }
        self.inner.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Marks every still-queued job cancelled (used on drop so no
    /// handle waits forever).
    fn abort_queued(&self) {
        let jobs: Vec<QueuedJob> = {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            q.shutdown = true;
            std::mem::take(&mut q.heap).into_vec()
        };
        if jobs.is_empty() {
            return;
        }
        let mut stats = self.inner.stats.lock().expect("stats poisoned");
        for job in jobs {
            stats.cancelled += 1;
            job.shared.finish(JobResult {
                id: job.shared.id,
                outcome: JobOutcome::Cancelled,
                from_cache: false,
                queue_wait: job.submitted_at.elapsed(),
                solve_time: Duration::ZERO,
                worker: None,
                exec_seq: None,
            });
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.abort_queued();
        self.halt_workers();
    }
}

fn worker_loop(inner: Arc<ServiceInner>, wid: usize) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = q.heap.pop() {
                    q.running += 1;
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner.available.wait(q).expect("queue poisoned");
            }
        };
        process_job(&inner, wid, job);
        {
            let mut q = inner.queue.lock().expect("queue poisoned");
            q.running -= 1;
        }
        inner.drained.notify_all();
    }
}

fn process_job(inner: &ServiceInner, wid: usize, job: QueuedJob) {
    let queue_wait = job.submitted_at.elapsed();
    let exec_seq = inner.exec_seq.fetch_add(1, Ordering::SeqCst);
    let picked_up = Instant::now();

    let mut from_cache = false;
    let mut solve_time = Duration::ZERO;
    let outcome = if job.shared.cancelled.load(Ordering::SeqCst) {
        JobOutcome::Cancelled
    } else if job.deadline_at.is_some_and(|d| picked_up >= d) {
        // Expired while queued: reject without occupying the worker.
        JobOutcome::TimedOut
    } else if let Some(hit) = job
        .cache_key
        .as_ref()
        .and_then(|key| inner.cache.lock().expect("cache poisoned").get(key))
    {
        from_cache = true;
        JobOutcome::Completed(hit)
    } else {
        job.shared.set_running();
        let mut params = job.params.clone();
        let mut stop = job.shared.stop.clone();
        if let Some(deadline) = job.deadline_at {
            stop = stop.until(deadline);
        }
        params.stop = Some(stop);
        let erased = job.job;
        let ran =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || erased.run(&params)));
        solve_time = picked_up.elapsed();
        match ran {
            Ok(summary) => match summary.outcome {
                RunOutcome::Stopped => {
                    if job.shared.cancelled.load(Ordering::SeqCst) {
                        JobOutcome::Cancelled
                    } else {
                        JobOutcome::TimedOut
                    }
                }
                _ => {
                    if let Some(key) = &job.cache_key {
                        inner
                            .cache
                            .lock()
                            .expect("cache poisoned")
                            .insert(key, summary.clone());
                    }
                    JobOutcome::Completed(summary)
                }
            },
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".into());
                JobOutcome::Failed(msg)
            }
        }
    };

    {
        let mut stats = inner.stats.lock().expect("stats poisoned");
        match &outcome {
            JobOutcome::Completed(_) => {
                stats.completed += 1;
                if from_cache {
                    stats.cache_hits += 1;
                }
            }
            JobOutcome::TimedOut => stats.timed_out += 1,
            JobOutcome::Cancelled => stats.cancelled += 1,
            JobOutcome::Failed(_) => stats.failed += 1,
        }
        stats.queue_wait_us.record(queue_wait.as_micros() as u64);
        if !from_cache && solve_time > Duration::ZERO {
            stats.solve_time_us.record(solve_time.as_micros() as u64);
        }
        stats.per_worker_jobs[wid] += 1;
        stats.per_worker_busy_us[wid] += solve_time.as_micros() as u64;
        *stats.jobs_by_kind.entry(job.label.clone()).or_insert(0) += 1;
    }

    job.shared.finish(JobResult {
        id: job.shared.id,
        outcome,
        from_cache,
        queue_wait,
        solve_time,
        worker: Some(wid),
        exec_seq: Some(exec_seq),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec};
    use hyperspace_core::TopologySpec;

    fn small(kind: JobKind) -> JobRequest {
        JobRequest::new(JobSpec::new(kind).topology(TopologySpec::Torus2D { w: 4, h: 4 }))
    }

    #[test]
    fn sum_job_completes() {
        let service = SolverService::with_workers(2);
        let result = service.submit(small(JobKind::sum(10))).wait();
        let summary = result.outcome.summary().expect("completed");
        assert_eq!(summary.result.as_deref(), Some("55"));
        assert!(!result.from_cache);
        assert_eq!(service.stats().completed, 1);
    }

    #[test]
    fn identical_jobs_hit_the_cache() {
        let service = SolverService::with_workers(1);
        let first = service.submit(small(JobKind::fib(10))).wait();
        let second = service.submit(small(JobKind::fib(10))).wait();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(
            first.outcome.summary().unwrap(),
            second.outcome.summary().unwrap()
        );
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn paused_service_executes_by_priority() {
        let mut service = SolverService::paused(1);
        let low = service.submit(small(JobKind::sum(5)).priority(-1));
        let high = service.submit(small(JobKind::sum(6)).priority(10));
        let mid = service.submit(small(JobKind::sum(7)).priority(3));
        service.start();
        let (low, high, mid) = (low.wait(), high.wait(), mid.wait());
        assert!(high.exec_seq < mid.exec_seq, "high before mid");
        assert!(mid.exec_seq < low.exec_seq, "mid before low");
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let service = SolverService::with_workers(3);
        let handles: Vec<_> = (1..=12)
            .map(|n| service.submit(small(JobKind::sum(n))))
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 12);
        for h in handles {
            assert!(h.try_result().expect("finished").outcome.is_completed());
        }
    }

    #[test]
    fn result_cache_is_bounded_and_evicts_fifo() {
        let mut cache = ResultCache::new(2);
        let summary = |n: u64| RunSummary {
            result: Some(n.to_string()),
            outcome: RunOutcome::Halted,
            steps: n,
            computation_time: n,
            total_sent: 0,
            total_delivered: 0,
            activations_started: 0,
            activations_completed: 0,
            nodes_pruned: 0,
            best_incumbent: None,
        };
        cache.insert("a", summary(1));
        cache.insert("b", summary(2));
        assert_eq!(cache.len(), 2);
        cache.insert("c", summary(3)); // evicts "a"
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some() && cache.get("c").is_some());
        // Re-inserting an existing key neither grows nor reorders.
        cache.insert("b", summary(9));
        assert_eq!(cache.get("b").unwrap().steps, 2);
        // Capacity 0 disables caching.
        let mut off = ResultCache::new(0);
        off.insert("x", summary(1));
        assert_eq!(off.len(), 0);
    }

    #[test]
    fn cache_capacity_zero_disables_hits_end_to_end() {
        let service = SolverService::new(ServiceConfig {
            workers: 1,
            start_workers: true,
            cache_capacity: 0,
        });
        let first = service.submit(small(JobKind::fib(9))).wait();
        let second = service.submit(small(JobKind::fib(9))).wait();
        assert!(!first.from_cache && !second.from_cache);
        assert_eq!(service.stats().cache_hits, 0);
    }

    #[test]
    fn shutdown_on_a_paused_service_starts_workers_and_drains() {
        let service = SolverService::paused(2);
        let handle = service.submit(small(JobKind::sum(8)));
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert!(handle.try_result().expect("drained").outcome.is_completed());
    }

    #[test]
    #[should_panic(expected = "would block forever")]
    fn drain_on_a_paused_service_with_queued_jobs_panics() {
        let service = SolverService::paused(1);
        let _handle = service.submit(small(JobKind::sum(8)));
        service.drain();
    }

    #[test]
    fn stats_never_show_more_finished_than_submitted() {
        let service = SolverService::with_workers(4);
        let handles: Vec<_> = (0..40u64)
            .map(|n| service.submit(small(JobKind::sum(n % 7))))
            .collect();
        // Sample snapshots while jobs are in flight.
        for _ in 0..200 {
            let s = service.stats();
            assert!(
                s.finished() <= s.submitted,
                "finished {} > submitted {}",
                s.finished(),
                s.submitted
            );
        }
        for h in handles {
            h.wait();
        }
    }

    #[test]
    fn cdcl_members_on_non_sat_jobs_are_rejected_at_submit() {
        use hyperspace_core::PortfolioSpec;
        let service = SolverService::with_workers(1);
        let spec = JobSpec::new(JobKind::fib(10))
            .topology(TopologySpec::Torus2D { w: 4, h: 4 })
            .portfolio(PortfolioSpec::diversified_sat(6)); // members 4+ are CDCL
        let result = service.submit(spec).wait();
        match result.outcome {
            JobOutcome::Failed(reason) => {
                assert!(reason.contains("CDCL"), "{reason}");
                assert!(reason.contains("fib"), "{reason}");
            }
            other => panic!("expected a submit-time rejection, got {other:?}"),
        }
        assert!(result.worker.is_none(), "never reached a worker");
        assert_eq!(service.stats().failed, 1);
        // A SAT job with the same members is accepted and completes.
        let ok = service
            .submit(
                JobSpec::new(JobKind::sat(hyperspace_sat::gen::uf20_91(2)))
                    .topology(TopologySpec::Torus2D { w: 4, h: 4 })
                    .portfolio(PortfolioSpec::diversified_sat(6)),
            )
            .wait();
        assert!(ok.outcome.is_completed());
    }

    #[test]
    fn dropping_the_service_cancels_queued_jobs() {
        let service = SolverService::paused(1);
        let handle = service.submit(small(JobKind::sum(5)));
        drop(service);
        assert_eq!(handle.wait().outcome, JobOutcome::Cancelled);
    }

    #[test]
    fn submit_after_shutdown_fails_cleanly() {
        let mut service = SolverService::paused(1);
        service.start();
        let inner = Arc::clone(&service.inner);
        drop(service);
        let q = inner.queue.lock().unwrap();
        assert!(q.shutdown);
    }
}
