//! [`ServiceObserver`]: the live window onto a running service.
//!
//! A cloneable view over the service's [`Registry`] — per-job probes,
//! lifecycle flight recorder, queue-depth gauge, crash dumps — plus a
//! small sampling loop that turns the raw counters into the two series
//! an operator watches first: aggregate **steps/sec** and **queue
//! depth**. Observation is strictly read-only: nothing an observer does
//! can reach back into the deterministic solve loops.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use hyperspace_metrics::ascii::render_multi_chart;
use hyperspace_obs::{pretty, CrashDump, JobProbe, JsonValue, Registry};

/// Sampled history behind the observer's mutex. Sampling is explicit
/// (the embedder decides the cadence), so the mutex is never touched by
/// solver threads.
struct History {
    /// Wall-clock and aggregate step count at the previous sample.
    last: Option<(Instant, u64)>,
    steps_per_sec: Vec<f64>,
    queue_depth: Vec<f64>,
}

/// A cloneable, read-only live view of a [`crate::SolverService`].
///
/// Clones share the same registry and sample history, so one clone can
/// drive a sampling loop while another renders dashboards. Obtain one
/// via [`crate::SolverService::observe`]; it stays valid after the
/// service shuts down (the final counters remain readable).
#[derive(Clone)]
pub struct ServiceObserver {
    registry: Arc<Registry>,
    history: Arc<Mutex<History>>,
}

impl ServiceObserver {
    pub(crate) fn new(registry: Arc<Registry>) -> ServiceObserver {
        ServiceObserver {
            registry,
            history: Arc::new(Mutex::new(History {
                last: None,
                steps_per_sec: Vec::new(),
                queue_depth: Vec::new(),
            })),
        }
    }

    /// The underlying metric registry (named counters/gauges/spans,
    /// probes, flight recorder, crash dumps).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Per-job probes, ordered by job id.
    pub fn probes(&self) -> Vec<Arc<JobProbe>> {
        self.registry.probes()
    }

    /// Crash dumps captured so far (flight-recorder tails of panicked
    /// jobs).
    pub fn crashes(&self) -> Vec<CrashDump> {
        self.registry.crashes()
    }

    /// Engine steps executed across every job the service has run.
    pub fn total_steps(&self) -> u64 {
        self.registry.probes().iter().map(|p| p.steps()).sum()
    }

    /// Jobs currently waiting in the queue (the service keeps this
    /// gauge current at every push and pop).
    pub fn queue_depth(&self) -> u64 {
        self.registry.gauge("queue.depth").get()
    }

    /// Takes one sample for the dashboard series and returns the
    /// aggregate steps/sec since the previous sample (`0.0` on the
    /// first call). Call this on whatever cadence the display wants —
    /// the solver threads never pay for it.
    pub fn sample(&self) -> f64 {
        let steps = self.total_steps();
        let depth = self.queue_depth();
        let now = Instant::now();
        let mut h = self.history.lock().expect("observer history poisoned");
        let rate = match h.last {
            Some((then, prev)) => {
                let dt = now.duration_since(then).as_secs_f64();
                if dt > 0.0 {
                    steps.saturating_sub(prev) as f64 / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        h.last = Some((now, steps));
        h.steps_per_sec.push(rate);
        h.queue_depth.push(depth as f64);
        rate
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> usize {
        self.history
            .lock()
            .expect("observer history poisoned")
            .steps_per_sec
            .len()
    }

    /// Point-in-time JSON snapshot of the whole registry: counters,
    /// gauges, spans, per-job probes, flight-recorder tail and crash
    /// dumps. Self-contained — render with `to_string()` (compact) or
    /// [`ServiceObserver::snapshot_pretty`].
    pub fn snapshot(&self) -> JsonValue {
        self.registry.to_json()
    }

    /// The snapshot, pretty-printed.
    pub fn snapshot_pretty(&self) -> String {
        pretty(&self.snapshot())
    }

    /// An ASCII dashboard: the sampled steps/sec and queue-depth series
    /// as an overlaid line chart, followed by a one-line live summary.
    /// Both series are normalised to their own maxima by the renderer,
    /// so the chart shows trajectory, not absolute scale (the summary
    /// line carries the numbers).
    pub fn dashboard(&self, width: usize, height: usize) -> String {
        let h = self.history.lock().expect("observer history poisoned");
        let mut out = String::new();
        if h.steps_per_sec.is_empty() {
            out.push_str("(no samples yet — call sample() on a cadence)\n");
        } else {
            out.push_str(&render_multi_chart(
                &[
                    ("steps/s", h.steps_per_sec.as_slice()),
                    ("queue", h.queue_depth.as_slice()),
                ],
                width,
                height,
            ));
        }
        let latest = h.steps_per_sec.last().copied().unwrap_or(0.0);
        drop(h);
        out.push_str(&format!(
            "live: {:.0} steps/s | {} queued | {} jobs probed | {} events | {} crashes\n",
            latest,
            self.queue_depth(),
            self.registry.probes().len(),
            self.registry.recorder().recorded(),
            self.registry.crashes().len(),
        ));
        out
    }
}

impl std::fmt::Debug for ServiceObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceObserver")
            .field("jobs", &self.registry.probes().len())
            .field("samples", &self.samples())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperspace_obs::Observer;

    #[test]
    fn sampling_builds_the_dashboard_series() {
        let registry = Arc::new(Registry::default());
        let obs = ServiceObserver::new(Arc::clone(&registry));
        assert_eq!(obs.sample(), 0.0); // no previous sample
        registry.probe(1, "x").on_step(500, 10, 0);
        registry.gauge("queue.depth").set(3);
        let rate = obs.sample();
        assert!(rate > 0.0, "steps advanced between samples: {rate}");
        assert_eq!(obs.samples(), 2);
        assert_eq!(obs.queue_depth(), 3);
        let dash = obs.dashboard(40, 8);
        assert!(dash.contains("steps/s"), "{dash}");
        assert!(dash.contains("3 queued"), "{dash}");
    }

    #[test]
    fn clones_share_history_and_registry() {
        let obs = ServiceObserver::new(Arc::new(Registry::default()));
        let clone = obs.clone();
        obs.sample();
        clone.sample();
        assert_eq!(obs.samples(), 2);
    }

    #[test]
    fn empty_observer_renders_placeholder_dashboard() {
        let obs = ServiceObserver::new(Arc::new(Registry::default()));
        assert!(obs.dashboard(40, 8).contains("no samples yet"));
        let json = obs.snapshot_pretty();
        assert!(json.contains("\"jobs\""), "{json}");
    }
}
