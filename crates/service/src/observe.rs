//! [`ServiceObserver`]: the live window onto a running service.
//!
//! A cloneable view over the service's [`Registry`] — per-job probes,
//! lifecycle flight recorder, queue-depth gauge, crash dumps — plus a
//! small sampling loop that turns the raw counters into ring-buffered
//! time series and EWMA rate estimators, summarised as the
//! [`Signals`] vector an elastic scheduler (or a dashboard) consumes.
//! Observation is strictly read-only: nothing an observer does can
//! reach back into the deterministic solve loops.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use hyperspace_metrics::ascii::render_multi_chart;
use hyperspace_obs::{
    pretty, CrashDump, EwmaRate, JobProbe, JsonValue, Registry, RingSeries, Signals,
};

/// Samples each dashboard ring series retains.
const SERIES_CAPACITY: usize = 512;
/// EWMA smoothing factor for the rate estimators — biased toward
/// recency (a scheduler reacting to a stale rate oscillates).
const RATE_ALPHA: f64 = 0.3;

/// Sampled history behind the observer's mutex. Sampling is explicit
/// (the embedder decides the cadence), so the mutex is never touched by
/// solver threads.
struct History {
    /// Wall clock at the previous sample.
    last: Option<Instant>,
    /// Aggregate steps/sec estimator over the summed step counters.
    steps_rate: EwmaRate,
    /// Incumbent improvements/sec estimator (the B&B progress signal).
    incumbent_rate: EwmaRate,
    steps_per_sec: RingSeries,
    queue_depth: RingSeries,
    /// The most recent full signal vector.
    signals: Signals,
}

/// A cloneable, read-only live view of a [`crate::SolverService`].
///
/// Clones share the same registry and sample history, so one clone can
/// drive a sampling loop while another renders dashboards. Obtain one
/// via [`crate::SolverService::observe`]; it stays valid after the
/// service shuts down (the final counters remain readable).
#[derive(Clone)]
pub struct ServiceObserver {
    registry: Arc<Registry>,
    history: Arc<Mutex<History>>,
}

impl ServiceObserver {
    pub(crate) fn new(registry: Arc<Registry>) -> ServiceObserver {
        ServiceObserver {
            registry,
            history: Arc::new(Mutex::new(History {
                last: None,
                steps_rate: EwmaRate::new(RATE_ALPHA),
                incumbent_rate: EwmaRate::new(RATE_ALPHA),
                steps_per_sec: RingSeries::new(SERIES_CAPACITY),
                queue_depth: RingSeries::new(SERIES_CAPACITY),
                signals: Signals::default(),
            })),
        }
    }

    /// The underlying metric registry (named counters/gauges/spans,
    /// probes, flight recorder, crash dumps).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Per-job probes, ordered by job id.
    pub fn probes(&self) -> Vec<Arc<JobProbe>> {
        self.registry.probes()
    }

    /// Crash dumps captured so far (flight-recorder tails of panicked
    /// jobs).
    pub fn crashes(&self) -> Vec<CrashDump> {
        self.registry.crashes()
    }

    /// Engine steps executed across every job the service has run.
    pub fn total_steps(&self) -> u64 {
        self.registry.probes().iter().map(|p| p.steps()).sum()
    }

    /// Jobs currently waiting in the queue (the service keeps this
    /// gauge current at every push and pop).
    pub fn queue_depth(&self) -> u64 {
        self.registry.gauge("queue.depth").get()
    }

    /// Takes one sample: feeds the ring series and rate estimators,
    /// refreshes the [`Signals`] vector, and returns the smoothed
    /// aggregate steps/sec (`0.0` until two samples exist). Call this
    /// on whatever cadence the display or scheduler wants — the solver
    /// threads never pay for it.
    pub fn sample(&self) -> f64 {
        let probes = self.registry.probes();
        let steps: u64 = probes.iter().map(|p| p.steps()).sum();
        let improvements: u64 = probes.iter().map(|p| p.incumbent_updates()).sum();
        let frontier: u64 = probes.iter().map(|p| p.open_records()).sum();
        let depth = self.queue_depth();
        // Per-shard active-set loads pooled across every job's profiler:
        // the max/mean imbalance is the repartitioning signal.
        let (mut load_max, mut load_sum, mut load_n) = (0u64, 0u64, 0u64);
        for probe in &probes {
            for shard in probe.phases().shards().iter() {
                let active = shard.active();
                load_max = load_max.max(active);
                load_sum += active;
                load_n += 1;
            }
        }
        let now = Instant::now();
        let mut h = self.history.lock().expect("observer history poisoned");
        let dt = h
            .last
            .map(|then| now.saturating_duration_since(then).as_secs_f64())
            .unwrap_or(0.0);
        h.last = Some(now);
        let rate = h.steps_rate.observe(steps as f64, dt);
        let incumbent_rate = h.incumbent_rate.observe(improvements as f64, dt);
        h.steps_per_sec.push(rate);
        h.queue_depth.push(depth as f64);
        let load_mean = if load_n > 0 {
            load_sum as f64 / load_n as f64
        } else {
            0.0
        };
        h.signals = Signals {
            steps_per_sec: rate,
            queue_depth: depth as f64,
            incumbent_rate,
            frontier_size: frontier as f64,
            shard_load_max: load_max as f64,
            shard_load_mean: load_mean,
            shard_imbalance: if load_mean > 0.0 {
                load_max as f64 / load_mean
            } else {
                0.0
            },
        };
        rate
    }

    /// The most recent signal vector (all zeros before the first
    /// [`ServiceObserver::sample`]).
    pub fn signals(&self) -> Signals {
        self.history
            .lock()
            .expect("observer history poisoned")
            .signals
    }

    /// Samples recorded so far (including any the ring has evicted).
    pub fn samples(&self) -> usize {
        self.history
            .lock()
            .expect("observer history poisoned")
            .steps_per_sec
            .pushed() as usize
    }

    /// Point-in-time JSON snapshot of the whole registry: counters,
    /// gauges, spans, per-job probes, flight-recorder tail and crash
    /// dumps. Self-contained — render with `to_string()` (compact) or
    /// [`ServiceObserver::snapshot_pretty`].
    pub fn snapshot(&self) -> JsonValue {
        self.registry.to_json()
    }

    /// The snapshot, pretty-printed.
    pub fn snapshot_pretty(&self) -> String {
        pretty(&self.snapshot())
    }

    /// An ASCII dashboard: the sampled steps/sec and queue-depth series
    /// as an overlaid line chart, followed by a one-line live summary.
    /// Both series are normalised to their own maxima by the renderer,
    /// so the chart shows trajectory, not absolute scale (the summary
    /// line carries the numbers).
    pub fn dashboard(&self, width: usize, height: usize) -> String {
        let h = self.history.lock().expect("observer history poisoned");
        let mut out = String::new();
        let latest = h.steps_per_sec.last().unwrap_or(0.0);
        if h.steps_per_sec.is_empty() {
            out.push_str("(no samples yet — call sample() on a cadence)\n");
        } else {
            out.push_str(&render_multi_chart(
                &[
                    ("steps/s", &h.steps_per_sec.values()),
                    ("queue", &h.queue_depth.values()),
                ],
                width,
                height,
            ));
        }
        drop(h);
        out.push_str(&format!(
            "live: {:.0} steps/s | {} queued | {} jobs probed | {} events | {} crashes\n",
            latest,
            self.queue_depth(),
            self.registry.probes().len(),
            self.registry.recorder().recorded(),
            self.registry.crashes().len(),
        ));
        out
    }
}

impl std::fmt::Debug for ServiceObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceObserver")
            .field("jobs", &self.registry.probes().len())
            .field("samples", &self.samples())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperspace_obs::Observer;

    #[test]
    fn sampling_builds_the_dashboard_series() {
        let registry = Arc::new(Registry::default());
        let obs = ServiceObserver::new(Arc::clone(&registry));
        assert_eq!(obs.sample(), 0.0); // no previous sample
        registry.probe(1, "x").on_step(500, 10, 0);
        registry.gauge("queue.depth").set(3);
        let rate = obs.sample();
        assert!(rate > 0.0, "steps advanced between samples: {rate}");
        assert_eq!(obs.samples(), 2);
        assert_eq!(obs.queue_depth(), 3);
        let dash = obs.dashboard(40, 8);
        assert!(dash.contains("steps/s"), "{dash}");
        assert!(dash.contains("3 queued"), "{dash}");
    }

    #[test]
    fn signals_vector_reflects_the_probes() {
        let registry = Arc::new(Registry::default());
        let obs = ServiceObserver::new(Arc::clone(&registry));
        assert_eq!(obs.signals(), Signals::default());
        let probe = registry.probe(1, "bnb");
        probe.on_progress(10, 42, Some(100));
        probe.on_progress(20, 42, Some(90));
        probe.on_shard_active(0, 30);
        probe.on_shard_active(1, 10);
        registry.gauge("queue.depth").set(2);
        obs.sample();
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.sample();
        let s = obs.signals();
        assert_eq!(s.queue_depth, 2.0);
        assert_eq!(s.frontier_size, 42.0);
        assert_eq!(s.shard_load_max, 30.0);
        assert_eq!(s.shard_load_mean, 20.0);
        assert!((s.shard_imbalance - 1.5).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn clones_share_history_and_registry() {
        let obs = ServiceObserver::new(Arc::new(Registry::default()));
        let clone = obs.clone();
        obs.sample();
        clone.sample();
        assert_eq!(obs.samples(), 2);
    }

    #[test]
    fn empty_observer_renders_placeholder_dashboard() {
        let obs = ServiceObserver::new(Arc::new(Registry::default()));
        assert!(obs.dashboard(40, 8).contains("no samples yet"));
        let json = obs.snapshot_pretty();
        assert!(json.contains("\"jobs\""), "{json}");
    }
}
