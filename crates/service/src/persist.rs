//! Durable job records: what the service writes into the
//! [`hyperspace_store::JobStore`] and how a restarted process turns the
//! bytes back into a runnable job.
//!
//! A record is the manifest payload for one job: a versioned header,
//! the job's *spec* (workload + machine configuration, rendered through
//! the canonical `Display`/`FromStr` spec grammar), its progress floor
//! (the step count of its last durable checkpoint barrier), and — when
//! the workload's state is byte-serialisable — its latest checkpoint
//! bytes. Recovery re-submits the spec and deterministically replays to
//! the floor (the PR 5 crash-restart path), so the recovered
//! `RunSummary` is bit-identical to an uninterrupted run.
//!
//! Closure-backed workloads ([`JobKind::Erased`] /
//! [`JobKind::ErasedFactory`]) hold live `FnOnce` state the process
//! cannot serialise; [`encode_spec`] returns `None` for them and they
//! simply do not survive a process kill (they *do* still survive worker
//! crashes in-process, via the factory).
//!
//! Deadlines are deliberately not persisted: a wall-clock budget
//! measured from the original submission is meaningless after a restart
//! of unknown delay, and silently re-arming it would time out every
//! recovered job.

use std::str::FromStr;

use hyperspace_apps::{Item, TspInstance};
use hyperspace_core::{
    BackendSpec, CheckpointSpec, JobParams, MapperSpec, ObjectiveSpec, PortfolioSpec, PruneSpec,
    StrategyExpr, TopologySpec,
};
use hyperspace_sat::{dimacs, Heuristic, SimplifyMode};
use hyperspace_sim::codec::{Reader, Writer};
use hyperspace_sim::{Codec, CodecError};

use crate::job::JobKind;

/// Version of the record payload layout (independent of the manifest
/// header version: the store frames bytes, this module fills them).
/// Version 2 appended the optional strategy expression after the
/// portfolio; version-1 records (no strategy field) still decode.
pub const RECORD_VERSION: u32 = 2;

/// Upper bound on a persisted TSP instance's city count. The decoder
/// must validate `n * n == dist.len()` before `TspInstance::new` (which
/// asserts), and bounding `n` first keeps the multiplication — and the
/// allocation it implies — out of attacker-controlled range.
const MAX_TSP_CITIES: u64 = 1 << 12;

/// A job reconstructed from its durable record.
pub struct RecoveredJob {
    /// Queue priority of the original submission.
    pub priority: i32,
    /// The workload, rebuilt from its canonical encoding.
    pub kind: JobKind,
    /// Machine/run configuration of the original submission.
    pub params: JobParams,
    /// Step count of the last durable checkpoint barrier — the replay
    /// floor recovery resumes past.
    pub checkpoint_steps: u64,
    /// Latest serialised checkpoint bytes, when the workload's slice
    /// state is byte-serialisable (reserved: stack slices hold live
    /// closures and persist `None`; recovery replays determinstically
    /// from the spec instead).
    pub checkpoint: Option<Vec<u8>>,
    /// The record's spec bytes, verbatim — reused by the recovered
    /// job's subsequent barrier persists (the spec never changes over a
    /// job's lifetime, so re-encoding it would be wasted work).
    pub spec_bytes: Vec<u8>,
}

fn invalid(what: impl std::fmt::Display) -> CodecError {
    CodecError::Invalid(what.to_string())
}

fn put_str(w: &mut Writer, s: impl ToString) {
    s.to_string().encode(w);
}

fn get_parsed<T>(r: &mut Reader<'_>, what: &str) -> Result<T, CodecError>
where
    T: FromStr,
    T::Err: std::fmt::Display,
{
    let s = String::decode(r)?;
    s.parse()
        .map_err(|err| invalid(format!("{what} `{s}`: {err}")))
}

/// Encodes the immutable half of a job's durable record — priority,
/// workload, machine configuration — or `None` when the workload is
/// closure-backed and cannot be persisted. Called once at submission;
/// the bytes are reused verbatim by every subsequent barrier persist.
pub fn encode_spec(priority: i32, kind: &JobKind, params: &JobParams) -> Option<Vec<u8>> {
    let mut w = Writer::new();
    w.put_u32(RECORD_VERSION);
    w.put_i64(i64::from(priority));
    match kind {
        JobKind::Sat {
            cnf,
            heuristic,
            mode,
        } => {
            w.put_u8(0);
            put_str(&mut w, dimacs::to_string(cnf));
            put_str(&mut w, heuristic);
            put_str(&mut w, mode);
        }
        JobKind::Knapsack { items, capacity } => {
            w.put_u8(1);
            encode_items(&mut w, items, *capacity);
        }
        JobKind::BnbKnapsack { items, capacity } => {
            w.put_u8(2);
            encode_items(&mut w, items, *capacity);
        }
        JobKind::Tsp { inst } => {
            w.put_u8(3);
            w.put_u64(inst.n as u64);
            inst.dist.encode(&mut w);
        }
        JobKind::NQueens { n } => {
            w.put_u8(4);
            w.put_u8(*n);
        }
        JobKind::Fib { n } => {
            w.put_u8(5);
            w.put_u64(*n);
        }
        JobKind::Sum { n } => {
            w.put_u8(6);
            w.put_u64(*n);
        }
        // Live closures: not serialisable, not recoverable across a
        // process kill.
        JobKind::Erased { .. } | JobKind::ErasedFactory { .. } => return None,
    }
    put_str(&mut w, &params.topology);
    put_str(&mut w, &params.mapper);
    put_str(&mut w, &params.backend);
    params.cancellation.encode(&mut w);
    put_str(&mut w, params.objective);
    put_str(&mut w, params.prune);
    put_str(&mut w, params.checkpoint);
    w.put_u64(params.max_steps);
    w.put_u32(params.root_node);
    params
        .portfolio
        .as_ref()
        .map(|p| p.to_string())
        .encode(&mut w);
    params
        .strategy
        .as_ref()
        .map(|e| e.to_string())
        .encode(&mut w);
    Some(w.into_bytes())
}

fn encode_items(w: &mut Writer, items: &[Item], capacity: u32) {
    let pairs: Vec<(u32, u32)> = items.iter().map(|i| (i.weight, i.value)).collect();
    pairs.encode(w);
    w.put_u32(capacity);
}

fn decode_items(r: &mut Reader<'_>) -> Result<(Vec<Item>, u32), CodecError> {
    let pairs = Vec::<(u32, u32)>::decode(r)?;
    let items = pairs
        .into_iter()
        .map(|(weight, value)| Item { weight, value })
        .collect();
    Ok((items, r.get_u32()?))
}

/// Assembles a full record payload: the (pre-encoded) spec, the current
/// progress floor, and optional checkpoint bytes.
pub fn encode_record(
    spec_bytes: &[u8],
    checkpoint_steps: u64,
    checkpoint: Option<&[u8]>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bytes(spec_bytes);
    w.put_u64(checkpoint_steps);
    checkpoint.map(|b| b.to_vec()).encode(&mut w);
    w.into_bytes()
}

/// Decodes a record payload back into a runnable job. Corruption-safe:
/// every length is bounded by the input, every parsed spec string is
/// validated through its `FromStr` grammar, and structurally impossible
/// values (a TSP matrix that is not `n x n`, an unknown workload tag)
/// error instead of panicking downstream.
pub fn decode_record(payload: &[u8]) -> Result<RecoveredJob, CodecError> {
    let mut r = Reader::new(payload);
    let spec_bytes = r.get_bytes()?;
    let checkpoint_steps = r.get_u64()?;
    let checkpoint = Option::<Vec<u8>>::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(invalid(format!(
            "{} trailing bytes after the job record",
            r.remaining()
        )));
    }

    let mut r = Reader::new(spec_bytes);
    let version = r.get_u32()?;
    if !(1..=RECORD_VERSION).contains(&version) {
        return Err(invalid(format!(
            "unsupported job record version {version} (expected 1..={RECORD_VERSION})"
        )));
    }
    let priority = r.get_i64()?;
    let priority = i32::try_from(priority)
        .map_err(|_| invalid(format!("priority {priority} out of i32 range")))?;
    let tag = r.get_u8()?;
    let kind = match tag {
        0 => {
            let text = String::decode(&mut r)?;
            let cnf = dimacs::parse(&text).map_err(|err| invalid(format!("dimacs: {err}")))?;
            let heuristic: Heuristic = get_parsed(&mut r, "heuristic")?;
            let mode: SimplifyMode = get_parsed(&mut r, "simplify mode")?;
            JobKind::Sat {
                cnf,
                heuristic,
                mode,
            }
        }
        1 => {
            let (items, capacity) = decode_items(&mut r)?;
            JobKind::Knapsack { items, capacity }
        }
        2 => {
            let (items, capacity) = decode_items(&mut r)?;
            JobKind::BnbKnapsack { items, capacity }
        }
        3 => {
            let n = r.get_u64()?;
            if n > MAX_TSP_CITIES {
                return Err(invalid(format!(
                    "tsp city count {n} exceeds {MAX_TSP_CITIES}"
                )));
            }
            let n = n as usize;
            let dist = Vec::<u64>::decode(&mut r)?;
            // Validate before TspInstance::new, which asserts.
            if dist.len() != n * n {
                return Err(invalid(format!(
                    "tsp distance matrix has {} cells for {n} cities (need {})",
                    dist.len(),
                    n * n
                )));
            }
            JobKind::Tsp {
                inst: TspInstance::new(n, dist),
            }
        }
        4 => JobKind::NQueens { n: r.get_u8()? },
        5 => JobKind::Fib { n: r.get_u64()? },
        6 => JobKind::Sum { n: r.get_u64()? },
        other => return Err(invalid(format!("unknown workload tag {other}"))),
    };

    let topology = get_parsed::<TopologySpec>(&mut r, "topology")?;
    let mapper = get_parsed::<MapperSpec>(&mut r, "mapper")?;
    let backend = get_parsed::<BackendSpec>(&mut r, "backend")?;
    let cancellation = bool::decode(&mut r)?;
    let objective = get_parsed::<ObjectiveSpec>(&mut r, "objective")?;
    let prune = get_parsed::<PruneSpec>(&mut r, "prune")?;
    let checkpoint_spec = get_parsed::<CheckpointSpec>(&mut r, "checkpoint")?;
    let max_steps = r.get_u64()?;
    let root_node = r.get_u32()?;
    let portfolio = match Option::<String>::decode(&mut r)? {
        Some(s) => Some(
            s.parse::<PortfolioSpec>()
                .map_err(|err| invalid(format!("portfolio `{s}`: {err}")))?,
        ),
        None => None,
    };
    // Version 1 records predate strategy expressions and simply end
    // here; the field was appended, so earlier offsets are unchanged.
    let strategy = if version >= 2 {
        match Option::<String>::decode(&mut r)? {
            Some(s) => Some(
                s.parse::<StrategyExpr>()
                    .map_err(|err| invalid(format!("strategy `{s}`: {err}")))?,
            ),
            None => None,
        }
    } else {
        None
    };
    let params = JobParams {
        topology,
        mapper,
        backend,
        cancellation,
        objective,
        prune,
        checkpoint: checkpoint_spec,
        max_steps,
        root_node,
        portfolio,
        strategy,
        ..JobParams::default()
    };
    if r.remaining() != 0 {
        return Err(invalid(format!(
            "{} trailing bytes after the job spec",
            r.remaining()
        )));
    }
    Ok(RecoveredJob {
        priority,
        kind,
        params,
        checkpoint_steps,
        checkpoint,
        spec_bytes: spec_bytes.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperspace_sat::gen;

    fn sat_spec() -> (i32, JobKind, JobParams) {
        let kind = JobKind::sat_with(gen::uf20_91(3), Heuristic::Dlis, SimplifyMode::SplitOnly);
        let params = JobParams {
            checkpoint: CheckpointSpec::every(256),
            max_steps: 123_456,
            cancellation: true,
            ..JobParams::default()
        };
        (7, kind, params)
    }

    #[test]
    fn records_round_trip_for_every_persistable_kind() {
        let kinds = vec![
            JobKind::sat(gen::uf20_91(1)),
            JobKind::knapsack(
                vec![
                    Item {
                        weight: 2,
                        value: 3,
                    },
                    Item {
                        weight: 5,
                        value: 8,
                    },
                ],
                7,
            ),
            JobKind::bnb_knapsack(
                vec![Item {
                    weight: 1,
                    value: 1,
                }],
                4,
            ),
            JobKind::tsp(TspInstance::random(1, 5, 30)),
            JobKind::nqueens(6),
            JobKind::fib(17),
            JobKind::sum(1000),
        ];
        for kind in kinds {
            let label = kind.label();
            let spec = encode_spec(-3, &kind, &JobParams::default())
                .unwrap_or_else(|| panic!("{label} is persistable"));
            let payload = encode_record(&spec, 512, None);
            let back = decode_record(&payload).expect("decodes");
            assert_eq!(back.priority, -3, "{label}");
            assert_eq!(back.kind.label(), label);
            assert_eq!(back.checkpoint_steps, 512);
            assert!(back.checkpoint.is_none());
            // The recovered spec is the same computation: cache keys
            // agree (the strongest canonical-equality check available).
            use crate::job::JobSpec;
            let original = JobSpec {
                kind: kind.try_clone().expect("clonable"),
                params: JobParams::default(),
            };
            let recovered = JobSpec {
                kind: back.kind,
                params: back.params,
            };
            assert_eq!(original.cache_key(), recovered.cache_key(), "{label}");
        }
    }

    #[test]
    fn params_and_checkpoint_bytes_survive() {
        let (priority, kind, params) = sat_spec();
        let spec = encode_spec(priority, &kind, &params).expect("persistable");
        let payload = encode_record(&spec, 2048, Some(b"checkpoint-bytes"));
        let back = decode_record(&payload).expect("decodes");
        assert_eq!(back.priority, 7);
        assert_eq!(back.params.checkpoint, params.checkpoint);
        assert_eq!(back.params.max_steps, 123_456);
        assert!(back.params.cancellation);
        assert_eq!(back.checkpoint_steps, 2048);
        assert_eq!(back.checkpoint.as_deref(), Some(&b"checkpoint-bytes"[..]));
    }

    #[test]
    fn strategy_expressions_survive_persistence() {
        let expr: StrategyExpr = "portfolio(limit(discrepancy,2,mesh),restart(luby:64,cdcl))"
            .parse()
            .expect("valid expression");
        let kind = JobKind::sat(gen::uf20_91(4));
        let params = JobParams {
            strategy: Some(expr.clone()),
            ..JobParams::default()
        };
        let spec = encode_spec(0, &kind, &params).expect("persistable");
        let back = decode_record(&encode_record(&spec, 0, None)).expect("decodes");
        assert_eq!(back.params.strategy, Some(expr));
        use crate::job::JobSpec;
        let original = JobSpec {
            kind: kind.try_clone().expect("clonable"),
            params,
        };
        let recovered = JobSpec {
            kind: back.kind,
            params: back.params,
        };
        assert_eq!(original.cache_key(), recovered.cache_key());
    }

    #[test]
    fn version_1_records_without_a_strategy_still_decode() {
        // A version-1 spec is exactly a version-2 spec minus the
        // trailing strategy option: strip the appended None tag, stamp
        // the old version, and the decoder must accept it unchanged.
        let (priority, kind, params) = sat_spec();
        let spec = encode_spec(priority, &kind, &params).expect("persistable");
        assert_eq!(*spec.last().expect("non-empty"), 0, "trailing None tag");
        let mut v1 = spec[..spec.len() - 1].to_vec();
        v1[0..4].copy_from_slice(&1u32.to_le_bytes());
        let back = decode_record(&encode_record(&v1, 64, None)).expect("v1 decodes");
        assert_eq!(back.priority, 7);
        assert!(back.params.strategy.is_none());
        assert_eq!(back.params.max_steps, 123_456);
    }

    #[test]
    fn closure_backed_kinds_are_not_persistable() {
        use hyperspace_core::ErasedStackJob;
        use hyperspace_recursion::{FnProgram, Rec};
        let factory = JobKind::erased_with_factory("made", || {
            ErasedStackJob::new(
                FnProgram::new(|n: u64| -> Rec<u64, u64> { Rec::done(n) }),
                3,
            )
        });
        assert!(encode_spec(0, &factory, &JobParams::default()).is_none());
    }

    #[test]
    fn every_truncation_errors() {
        let (priority, kind, params) = sat_spec();
        let spec = encode_spec(priority, &kind, &params).expect("persistable");
        let payload = encode_record(&spec, 64, Some(&[1, 2, 3]));
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut]).is_err(), "{cut}");
        }
    }

    #[test]
    fn forged_tsp_dimensions_error_instead_of_panicking() {
        // A 3-city instance whose persisted `n` is inflated: the decoder
        // must reject it before TspInstance::new's assert.
        let inst = TspInstance::random(9, 3, 10);
        let spec = encode_spec(0, &JobKind::tsp(inst), &JobParams::default()).expect("persistable");
        // n sits right after version(4) + priority(8) + tag(1).
        let mut forged = spec.clone();
        forged[13..21].copy_from_slice(&4u64.to_le_bytes());
        let payload = encode_record(&forged, 0, None);
        assert!(decode_record(&payload).is_err());
        // And an absurd n fails the explicit bound, not the multiply.
        let mut huge = spec;
        huge[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
        let payload = encode_record(&huge, 0, None);
        assert!(decode_record(&payload).is_err());
    }

    #[test]
    fn unknown_versions_and_tags_error() {
        let (priority, kind, params) = sat_spec();
        let spec = encode_spec(priority, &kind, &params).expect("persistable");
        let mut bad_version = spec.clone();
        bad_version[0..4].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode_record(&encode_record(&bad_version, 0, None)).is_err());
        let mut bad_tag = spec;
        bad_tag[12] = 0xFF;
        assert!(decode_record(&encode_record(&bad_tag, 0, None)).is_err());
    }
}
