//! Job specifications: what a tenant submits to the service.
//!
//! A [`JobSpec`] is the *full* description of one solve — the workload
//! ([`JobKind`]) plus the machine/run configuration (topology, mapper,
//! cancellation, step cap, root placement). Two submissions with equal
//! specs are the same computation, which is what makes the service's
//! result cache sound: [`JobSpec::cache_key`] renders the spec into a
//! canonical string (erased user programs are opaque and therefore
//! uncacheable).

use std::time::Duration;

use hyperspace_apps::{
    BnbKnapsackProgram, BnbKnapsackTask, FibProgram, Item, KnapsackProgram, KnapsackTask,
    NQueensProgram, QueensTask, SumProgram, TspInstance, TspProgram, TspTask,
};
use hyperspace_core::{
    BackendSpec, CheckpointMeta, CheckpointSpec, ErasedStackJob, JobParams, MapperSpec,
    ObjectiveSpec, PortfolioSpec, PruneSpec, RunSlice, RunSummary, SliceOutcome, StartedJob,
    TopologySpec,
};
use hyperspace_portfolio::{PortfolioRace, PortfolioRunner};
use hyperspace_recursion::RecProgram;
use hyperspace_sat::{dimacs, Cnf, DpllProgram, Heuristic, SimplifyMode, SubProblem};

/// The workload of one job: which program runs and on what input.
pub enum JobKind {
    /// Boolean satisfiability via the distributed DPLL program.
    Sat {
        /// The formula.
        cnf: Cnf,
        /// Branching heuristic.
        heuristic: Heuristic,
        /// Per-activation simplification strength.
        mode: SimplifyMode,
    },
    /// 0/1 knapsack by distributed branch and bound (path-local bound).
    Knapsack {
        /// Item list (pre-sort by density for tighter bounds).
        items: Vec<Item>,
        /// Knapsack capacity.
        capacity: u32,
    },
    /// Exact 0/1 knapsack via the stack's optimisation mode: shared
    /// incumbent + fractional-relaxation pruning. Submit with
    /// `objective(Maximise)` and a prune policy.
    BnbKnapsack {
        /// Item list (pre-sort by density for tighter bounds).
        items: Vec<Item>,
        /// Knapsack capacity.
        capacity: u32,
    },
    /// Small-instance TSP by branch and bound with a reduced-cost lower
    /// bound. Submit with `objective(Minimise)` and a prune policy.
    Tsp {
        /// The distance matrix.
        inst: TspInstance,
    },
    /// Count of N-queens placements.
    NQueens {
        /// Board size.
        n: u8,
    },
    /// Naive Fibonacci (throughput stress).
    Fib {
        /// Index.
        n: u64,
    },
    /// Linear-recursion sum (latency probe).
    Sum {
        /// Upper bound.
        n: u64,
    },
    /// An arbitrary user-supplied recursive program, type-erased.
    /// Opaque to the cache.
    Erased {
        /// Display label for stats and debugging.
        label: String,
        /// The boxed job.
        job: ErasedStackJob,
    },
    /// An arbitrary user program behind a re-invocable factory. Like
    /// [`JobKind::Erased`] it is opaque to the cache, but because the
    /// service can re-create the job it also supports checkpoint
    /// restarts after a worker crash.
    ErasedFactory {
        /// Display label for stats and debugging.
        label: String,
        /// Builds a fresh copy of the job on demand.
        factory: std::sync::Arc<dyn Fn() -> ErasedStackJob + Send + Sync>,
    },
}

impl JobKind {
    /// SAT with the service defaults (Jeroslow–Wang, fixpoint
    /// simplification — the strongest solver).
    pub fn sat(cnf: Cnf) -> JobKind {
        JobKind::Sat {
            cnf,
            heuristic: Heuristic::JeroslowWang,
            mode: SimplifyMode::Fixpoint,
        }
    }

    /// SAT with explicit solver configuration.
    pub fn sat_with(cnf: Cnf, heuristic: Heuristic, mode: SimplifyMode) -> JobKind {
        JobKind::Sat {
            cnf,
            heuristic,
            mode,
        }
    }

    /// SAT parsed from DIMACS text.
    pub fn sat_dimacs(text: &str) -> Result<JobKind, dimacs::DimacsError> {
        Ok(JobKind::sat(dimacs::parse(text)?))
    }

    /// 0/1 knapsack.
    pub fn knapsack(items: Vec<Item>, capacity: u32) -> JobKind {
        JobKind::Knapsack { items, capacity }
    }

    /// Exact 0/1 knapsack with shared-incumbent branch and bound.
    pub fn bnb_knapsack(items: Vec<Item>, capacity: u32) -> JobKind {
        JobKind::BnbKnapsack { items, capacity }
    }

    /// Small-instance TSP with shared-incumbent branch and bound.
    pub fn tsp(inst: TspInstance) -> JobKind {
        JobKind::Tsp { inst }
    }

    /// N-queens placement count.
    pub fn nqueens(n: u8) -> JobKind {
        JobKind::NQueens { n }
    }

    /// Naive Fibonacci.
    pub fn fib(n: u64) -> JobKind {
        JobKind::Fib { n }
    }

    /// `sum(1..=n)`.
    pub fn sum(n: u64) -> JobKind {
        JobKind::Sum { n }
    }

    /// An arbitrary recursive program. Uncacheable (the service cannot
    /// see inside the closure to normalise it).
    pub fn erased<P>(label: impl Into<String>, program: P, root_arg: P::Arg) -> JobKind
    where
        P: RecProgram,
        P::Out: std::fmt::Debug,
    {
        JobKind::Erased {
            label: label.into(),
            job: ErasedStackJob::new(program, root_arg),
        }
    }

    /// An arbitrary program behind a re-invocable factory: still
    /// uncacheable, but rebuildable — which is what lets the service
    /// restart it from its last checkpoint if a worker dies mid-solve.
    pub fn erased_with_factory(
        label: impl Into<String>,
        factory: impl Fn() -> ErasedStackJob + Send + Sync + 'static,
    ) -> JobKind {
        JobKind::ErasedFactory {
            label: label.into(),
            factory: std::sync::Arc::new(factory),
        }
    }

    /// A duplicate of this workload, when one can be made: every
    /// data-carrying kind clones; closure-backed [`JobKind::Erased`]
    /// jobs cannot (the service cannot duplicate an arbitrary
    /// `FnOnce`), which is why they are excluded from checkpoint
    /// restarts — use [`JobKind::erased_with_factory`] for those.
    pub fn try_clone(&self) -> Option<JobKind> {
        match self {
            JobKind::Sat {
                cnf,
                heuristic,
                mode,
            } => Some(JobKind::Sat {
                cnf: cnf.clone(),
                heuristic: *heuristic,
                mode: *mode,
            }),
            JobKind::Knapsack { items, capacity } => Some(JobKind::Knapsack {
                items: items.clone(),
                capacity: *capacity,
            }),
            JobKind::BnbKnapsack { items, capacity } => Some(JobKind::BnbKnapsack {
                items: items.clone(),
                capacity: *capacity,
            }),
            JobKind::Tsp { inst } => Some(JobKind::Tsp { inst: inst.clone() }),
            JobKind::NQueens { n } => Some(JobKind::NQueens { n: *n }),
            JobKind::Fib { n } => Some(JobKind::Fib { n: *n }),
            JobKind::Sum { n } => Some(JobKind::Sum { n: *n }),
            JobKind::Erased { .. } => None,
            JobKind::ErasedFactory { label, factory } => Some(JobKind::ErasedFactory {
                label: label.clone(),
                factory: std::sync::Arc::clone(factory),
            }),
        }
    }

    /// Short workload label for stats.
    pub fn label(&self) -> String {
        match self {
            JobKind::Sat { .. } => "sat".into(),
            JobKind::Knapsack { .. } => "knapsack".into(),
            JobKind::BnbKnapsack { .. } => "bnb-knapsack".into(),
            JobKind::Tsp { .. } => "tsp".into(),
            JobKind::NQueens { .. } => "nqueens".into(),
            JobKind::Fib { .. } => "fib".into(),
            JobKind::Sum { .. } => "sum".into(),
            JobKind::Erased { label, .. } => label.clone(),
            JobKind::ErasedFactory { label, .. } => label.clone(),
        }
    }

    /// Canonical rendering of the workload for cache keying; `None` for
    /// uncacheable (erased) workloads. A portfolio SAT job takes its
    /// solver knobs from the member strategies, so the superseded
    /// kind-level heuristic/mode are excluded from its token — two
    /// submissions racing the same members over the same formula are
    /// the same computation.
    fn cache_token(&self, portfolio: bool) -> Option<String> {
        match self {
            JobKind::Sat {
                cnf,
                heuristic,
                mode,
            } => Some(if portfolio {
                format!("sat/-/-/{}", dimacs::to_string(cnf))
            } else {
                format!("sat/{heuristic}/{mode}/{}", dimacs::to_string(cnf))
            }),
            JobKind::Knapsack { items, capacity } => {
                let items: Vec<String> = items
                    .iter()
                    .map(|i| format!("{}w{}v", i.weight, i.value))
                    .collect();
                Some(format!("knapsack/{capacity}/{}", items.join(",")))
            }
            JobKind::BnbKnapsack { items, capacity } => {
                let items: Vec<String> = items
                    .iter()
                    .map(|i| format!("{}w{}v", i.weight, i.value))
                    .collect();
                Some(format!("bnb-knapsack/{capacity}/{}", items.join(",")))
            }
            JobKind::Tsp { inst } => {
                let cells: Vec<String> = inst.dist.iter().map(|d| d.to_string()).collect();
                Some(format!("tsp/{}/{}", inst.n, cells.join(",")))
            }
            JobKind::NQueens { n } => Some(format!("nqueens/{n}")),
            JobKind::Fib { n } => Some(format!("fib/{n}")),
            JobKind::Sum { n } => Some(format!("sum/{n}")),
            JobKind::Erased { .. } | JobKind::ErasedFactory { .. } => None,
        }
    }

    /// Converts the workload into the uniform boxed job the pool runs.
    /// With `portfolio` set, the job races the member set through a
    /// [`PortfolioRunner`] (configured from the job's own params at
    /// execution time) instead of assembling one stack; SAT portfolios
    /// take their solver knobs from the member strategies, superseding
    /// the kind-level heuristic/mode. Erased workloads are opaque and
    /// always run single-stack.
    pub(crate) fn into_erased(self, portfolio: bool) -> ErasedStackJob {
        if portfolio {
            return match self {
                JobKind::Sat { cnf, .. } => ErasedStackJob::from_start_fn(move |params| {
                    let runner = PortfolioRunner::from_params(params)
                        .expect("portfolio jobs carry a portfolio spec");
                    start_race(runner.start_sat(&cnf), params.checkpoint)
                }),
                JobKind::Knapsack { items, capacity } => {
                    portfolio_mesh(KnapsackProgram, KnapsackTask::root(items, capacity))
                }
                JobKind::BnbKnapsack { items, capacity } => {
                    portfolio_mesh(BnbKnapsackProgram, BnbKnapsackTask::root(items, capacity))
                }
                JobKind::Tsp { inst } => portfolio_mesh(TspProgram, TspTask::root(inst)),
                JobKind::NQueens { n } => portfolio_mesh(NQueensProgram, QueensTask::root(n)),
                JobKind::Fib { n } => portfolio_mesh(FibProgram, n),
                JobKind::Sum { n } => portfolio_mesh(SumProgram, n),
                JobKind::Erased { job, .. } => job,
                JobKind::ErasedFactory { factory, .. } => factory(),
            };
        }
        match self {
            JobKind::Sat {
                cnf,
                heuristic,
                mode,
            } => ErasedStackJob::new(
                DpllProgram::new(heuristic).with_mode(mode),
                SubProblem::root(cnf),
            ),
            JobKind::Knapsack { items, capacity } => {
                ErasedStackJob::new(KnapsackProgram, KnapsackTask::root(items, capacity))
            }
            JobKind::BnbKnapsack { items, capacity } => {
                ErasedStackJob::new(BnbKnapsackProgram, BnbKnapsackTask::root(items, capacity))
            }
            JobKind::Tsp { inst } => ErasedStackJob::new(TspProgram, TspTask::root(inst)),
            JobKind::NQueens { n } => ErasedStackJob::new(NQueensProgram, QueensTask::root(n)),
            JobKind::Fib { n } => ErasedStackJob::new(FibProgram, n),
            JobKind::Sum { n } => ErasedStackJob::new(SumProgram, n),
            JobKind::Erased { job, .. } => job,
            JobKind::ErasedFactory { factory, .. } => factory(),
        }
    }
}

/// A portfolio race sliced at its existing sync-epoch barriers: the
/// whole race — live member machines plus bus bookkeeping — parks in
/// the slice between epochs, making portfolio jobs suspendable and
/// preemptible like any checkpointed single-stack job.
struct PortfolioSlice {
    race: Option<PortfolioRace>,
    epochs_per_slice: u64,
}

impl PortfolioSlice {
    fn race(&self) -> &PortfolioRace {
        self.race.as_ref().expect("race present until finished")
    }
}

impl RunSlice for PortfolioSlice {
    fn run_slice(mut self: Box<Self>) -> SliceOutcome {
        let race = self.race.as_mut().expect("race present until finished");
        if race.run_epochs(self.epochs_per_slice) {
            let race = self.race.take().expect("present");
            SliceOutcome::Finished(race.finish().into_summary())
        } else {
            SliceOutcome::Yielded(self)
        }
    }

    fn steps_done(&self) -> u64 {
        let race = self.race();
        race.epochs().saturating_mul(race.epoch_len())
    }

    fn checkpoint(&self) -> CheckpointMeta {
        let mut meta = CheckpointMeta {
            steps: self.steps_done(),
            ..CheckpointMeta::default()
        };
        meta.frontier.incumbent = self.race().best_incumbent();
        meta
    }
}

/// Starts a race monolithically or — under an enabled checkpoint spec —
/// sliced at epoch barriers, one checkpoint interval's worth of epochs
/// per slice.
fn start_race(race: PortfolioRace, checkpoint: CheckpointSpec) -> StartedJob {
    match checkpoint.interval() {
        None => {
            let mut race = race;
            race.run_epochs(u64::MAX);
            StartedJob::Finished(race.finish().into_summary())
        }
        Some(interval) => {
            let epochs_per_slice = interval.div_ceil(race.epoch_len()).max(1);
            StartedJob::Sliced(Box::new(PortfolioSlice {
                race: Some(race),
                epochs_per_slice,
            }))
        }
    }
}

/// Checks a spec's portfolio request against its workload; returns the
/// rejection reason for invalid combinations. CDCL members race learned
/// clauses over a formula, so they are only meaningful on SAT jobs
/// (erased workloads ignore the portfolio entirely and stay valid).
pub(crate) fn validate_portfolio(spec: &JobSpec) -> Option<String> {
    if spec.params.portfolio.is_some() && spec.params.strategy.is_some() {
        return Some(
            "spec sets both a portfolio and a strategy expression; \
             pick one (a strategy expression already describes its member set)"
                .into(),
        );
    }
    if let Some(reason) = validate_strategy(spec) {
        return Some(reason);
    }
    let folio = spec.params.portfolio.as_ref()?;
    if matches!(
        spec.kind,
        JobKind::Sat { .. } | JobKind::Erased { .. } | JobKind::ErasedFactory { .. }
    ) {
        return None;
    }
    let cdcl = folio
        .members
        .iter()
        .position(|m| matches!(m.engine, hyperspace_core::EngineSpec::Cdcl { .. }))?;
    Some(format!(
        "portfolio member {cdcl} is a CDCL strategy, but workload {:?} is not SAT; \
         only SAT portfolios race CDCL members",
        spec.kind.label()
    ))
}

/// Checks a spec's strategy expression against its workload. Lowering
/// errors (over-deep trees, CDCL under a discrepancy limit, nested
/// portfolios) reject at submission rather than panicking on a worker,
/// as do strategies that only SAT workloads can execute: CDCL engines,
/// `limit(discrepancy, ...)` scopes and `or(...)` retry chains all
/// manipulate the SAT search tree.
pub(crate) fn validate_strategy(spec: &JobSpec) -> Option<String> {
    let expr = spec.params.strategy.as_ref()?;
    let plans = match expr.members() {
        Ok(plans) => plans,
        Err(e) => return Some(format!("invalid strategy expression: {e}")),
    };
    if matches!(
        spec.kind,
        JobKind::Sat { .. } | JobKind::Erased { .. } | JobKind::ErasedFactory { .. }
    ) {
        return None;
    }
    for (id, plan) in plans.iter().enumerate() {
        if plan.attempts.len() > 1 {
            return Some(format!(
                "strategy member {id} is an or(...) retry chain, but workload {:?} \
                 is not SAT; only SAT jobs re-run exhausted attempts",
                spec.kind.label()
            ));
        }
        for attempt in &plan.attempts {
            if matches!(attempt.engine, hyperspace_core::EngineSpec::Cdcl { .. }) {
                return Some(format!(
                    "strategy member {id} is a CDCL strategy, but workload {:?} is \
                     not SAT; only SAT portfolios race CDCL members",
                    spec.kind.label()
                ));
            }
            if let Some(l) = attempt
                .limits
                .iter()
                .find(|l| l.kind == hyperspace_core::LimitKind::Discrepancy)
            {
                return Some(format!(
                    "strategy member {id} scopes limit({l}), but workload {:?} is \
                     not SAT; discrepancy budgets follow the SAT branching heuristic",
                    spec.kind.label()
                ));
            }
        }
    }
    None
}

/// Boxes a mesh-program portfolio race as a uniform pool job.
fn portfolio_mesh<P>(program: P, root_arg: P::Arg) -> ErasedStackJob
where
    P: RecProgram + Clone,
    P::Arg: Clone,
    P::Out: std::fmt::Debug,
{
    ErasedStackJob::from_start_fn(move |params| {
        let runner =
            PortfolioRunner::from_params(params).expect("portfolio jobs carry a portfolio spec");
        let race = runner.start_mesh(|_, _| program.clone(), root_arg.clone());
        start_race(race, params.checkpoint)
    })
}

impl std::fmt::Debug for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JobKind::{}", self.label())
    }
}

/// A complete job description: workload plus machine/run configuration.
#[derive(Debug)]
pub struct JobSpec {
    /// The workload.
    pub kind: JobKind,
    /// Machine/run configuration. The defaults — and the single source
    /// of truth for them — are [`JobParams::default`]; `params.stop` is
    /// ignored at submission (the service installs its own handle).
    pub params: JobParams,
}

impl JobSpec {
    /// A spec with the service defaults ([`JobParams::default`]: the
    /// paper's 14x14 torus, adaptive least-busy mapping, no layer-4
    /// cancellation).
    pub fn new(kind: JobKind) -> JobSpec {
        JobSpec {
            kind,
            params: JobParams::default(),
        }
    }

    /// Selects the machine topology.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.params.topology = spec;
        self
    }

    /// Selects the mapping policy.
    pub fn mapper(mut self, spec: MapperSpec) -> Self {
        self.params.mapper = spec;
        self
    }

    /// Selects the execution backend. Backends are bit-identical (the
    /// cross-backend equivalence suite enforces it), so this changes how
    /// fast the job runs, never what it computes — which is why it is
    /// *not* part of [`JobSpec::cache_key`].
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.params.backend = spec;
        self
    }

    /// Enables withdrawal of losing speculative branches.
    pub fn cancellation(mut self, on: bool) -> Self {
        self.params.cancellation = on;
        self
    }

    /// Selects the optimisation objective (branch-and-bound mode when
    /// not `Enumerate`). Part of the computation — and of the cache key.
    pub fn objective(mut self, spec: ObjectiveSpec) -> Self {
        self.params.objective = spec;
        self
    }

    /// Selects the pruning policy of a branch-and-bound run. Part of
    /// the computation — and of the cache key.
    pub fn prune(mut self, spec: PruneSpec) -> Self {
        self.params.prune = spec;
        self
    }

    /// Selects the checkpoint policy. `interval:N` makes the job
    /// suspendable/preemptible at every `N`-step barrier and eligible
    /// for checkpoint restarts after a worker crash. Like the backend
    /// it never changes what is computed (sliced runs are bit-identical
    /// to monolithic ones), so it is *not* part of
    /// [`JobSpec::cache_key`].
    pub fn checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.params.checkpoint = spec;
        self
    }

    /// Races a portfolio of diversified members instead of one stack:
    /// the first member to answer wins, losers are cancelled, and
    /// members exchange learned clauses / incumbents at deterministic
    /// sync epochs. The full member set is part of the computation — and
    /// of the cache key — though member *backends* are not (they are
    /// bit-identical). Only the winner's summary is cached.
    pub fn portfolio(mut self, spec: PortfolioSpec) -> Self {
        self.params.portfolio = Some(spec);
        self
    }

    /// Races the member set described by a strategy expression instead
    /// of one stack: `portfolio(...)` alternatives (and the branches of
    /// a top-level `or(...)` distribution) become racing members, each
    /// possibly an `or(...)` retry chain of limited attempts. The
    /// expression is part of the computation — and of the cache key via
    /// its backend-stripped [`StrategyExpr::describe`] rendering —
    /// superseding kind-level SAT knobs exactly like
    /// [`JobSpec::portfolio`]. Mutually exclusive with an explicit
    /// portfolio spec.
    ///
    /// [`StrategyExpr::describe`]: hyperspace_core::StrategyExpr::describe
    pub fn strategy(mut self, expr: hyperspace_core::StrategyExpr) -> Self {
        self.params.strategy = Some(expr);
        self
    }

    /// Overrides the step cap.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.params.max_steps = steps;
        self
    }

    /// Places the root trigger.
    pub fn root_node(mut self, node: u32) -> Self {
        self.params.root_node = node;
        self
    }

    /// The normalised cache key of this spec, or `None` if the workload
    /// is uncacheable. Equal keys denote identical computations. The
    /// execution backend is deliberately excluded: backends are
    /// bit-identical, so a summary computed sequentially may be served
    /// to a sharded resubmission and vice versa.
    pub fn cache_key(&self) -> Option<String> {
        let races = self.params.portfolio.is_some() || self.params.strategy.is_some();
        self.kind.cache_token(races).map(|token| {
            let mut key = format!(
                "{token}|{}|{}|cancel={}|obj={}|prune={}|steps={}|root={}|portfolio={}",
                self.params.topology,
                self.params.mapper,
                self.params.cancellation,
                self.params.objective,
                self.params.prune,
                self.params.max_steps,
                self.params.root_node,
                // The member set changes the computation; member
                // *backends* do not (describe() strips them), keeping the
                // backend-never-splits-the-cache invariant.
                self.params
                    .portfolio
                    .as_ref()
                    .map(|p| p.describe())
                    .unwrap_or_else(|| "none".into())
            );
            // Strategy expressions extend the key only when present, so
            // every pre-expression spec keeps its exact legacy key (the
            // cache stays warm across the upgrade). describe() strips
            // member backends like the portfolio rendering above.
            if let Some(expr) = &self.params.strategy {
                key.push_str("|strategy=");
                key.push_str(&expr.describe());
            }
            key
        })
    }
}

/// A [`JobSpec`] plus scheduling directives: queue priority and an
/// optional deadline (measured from submission — queue wait counts).
#[derive(Debug)]
pub struct JobRequest {
    /// What to solve and on which machine.
    pub spec: JobSpec,
    /// Queue priority: higher runs first; ties run in submission order.
    pub priority: i32,
    /// Wall-clock budget from submission; expiry yields
    /// [`JobOutcome::TimedOut`].
    pub deadline: Option<Duration>,
}

impl JobRequest {
    /// A request with default priority (0) and no deadline.
    pub fn new(spec: JobSpec) -> JobRequest {
        JobRequest {
            spec,
            priority: 0,
            deadline: None,
        }
    }

    /// Sets the queue priority (higher runs first).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the wall-clock budget from submission.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }
}

impl From<JobSpec> for JobRequest {
    fn from(spec: JobSpec) -> JobRequest {
        JobRequest::new(spec)
    }
}

impl From<JobKind> for JobRequest {
    fn from(kind: JobKind) -> JobRequest {
        JobRequest::new(JobSpec::new(kind))
    }
}

/// How a job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The solve ran to completion (inspect the summary's `outcome` for
    /// halted/quiescent/step-cap detail).
    Completed(RunSummary),
    /// The deadline expired — while queued or mid-solve.
    TimedOut,
    /// The submitter cancelled the job — while queued or mid-solve.
    Cancelled,
    /// The job panicked or the service shut down before running it.
    Failed(String),
}

impl JobOutcome {
    /// Whether the job produced a completed summary.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The completed summary, if any.
    pub fn summary(&self) -> Option<&RunSummary> {
        match self {
            JobOutcome::Completed(s) => Some(s),
            _ => None,
        }
    }
}

/// Everything the service reports back for one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's service-assigned id.
    pub id: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Whether the result was served from the cache (no solve ran).
    pub from_cache: bool,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time spent solving (zero for cache hits and pre-run rejections).
    pub solve_time: Duration,
    /// Worker that serviced the job, if it reached a worker.
    pub worker: Option<usize>,
    /// Global execution sequence number (order workers started jobs),
    /// if the job reached a worker.
    pub exec_seq: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperspace_sat::gen;

    #[test]
    fn cache_keys_identify_identical_specs() {
        let a = JobSpec::new(JobKind::sat(gen::uf20_91(1)));
        let b = JobSpec::new(JobKind::sat(gen::uf20_91(1)));
        let c = JobSpec::new(JobKind::sat(gen::uf20_91(2)));
        assert_eq!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
        // Machine configuration is part of the computation.
        let d = JobSpec::new(JobKind::sat(gen::uf20_91(1))).topology(TopologySpec::Ring { n: 8 });
        assert_ne!(a.cache_key(), d.cache_key());
    }

    #[test]
    fn backend_choice_does_not_split_the_cache() {
        // Same computation on different backends must share one cache
        // entry — backends are bit-identical, so the cached summary is
        // valid for all of them.
        let seq = JobSpec::new(JobKind::sat(gen::uf20_91(1)));
        let sharded = JobSpec::new(JobKind::sat(gen::uf20_91(1))).backend(BackendSpec::sharded(8));
        assert_eq!(seq.cache_key(), sharded.cache_key());
    }

    #[test]
    fn checkpoint_spec_does_not_split_the_cache() {
        // Checkpointing is scheduling, not computation: sliced runs are
        // bit-identical to monolithic ones, so — like the backend — the
        // checkpoint spec must not split cache entries.
        let monolithic = JobSpec::new(JobKind::sat(gen::uf20_91(1)));
        let sliced =
            JobSpec::new(JobKind::sat(gen::uf20_91(1))).checkpoint(CheckpointSpec::every(128));
        assert_eq!(monolithic.cache_key(), sliced.cache_key());
    }

    #[test]
    fn rebuildable_kinds_clone_and_erased_closures_do_not() {
        assert!(JobKind::sat(gen::uf20_91(1)).try_clone().is_some());
        assert!(JobKind::sum(9).try_clone().is_some());
        assert!(JobKind::nqueens(5).try_clone().is_some());
        use hyperspace_recursion::{FnProgram, Rec};
        let erased = JobKind::erased(
            "identity",
            FnProgram::new(|n: u64| -> Rec<u64, u64> { Rec::done(n) }),
            3,
        );
        assert!(erased.try_clone().is_none(), "FnOnce jobs cannot duplicate");
        let factory = JobKind::erased_with_factory("made", || {
            ErasedStackJob::new(
                FnProgram::new(|n: u64| -> Rec<u64, u64> { Rec::done(n) }),
                3,
            )
        });
        let cloned = factory.try_clone().expect("factories re-invoke");
        assert_eq!(cloned.label(), "made");
        assert_eq!(JobSpec::new(cloned).cache_key(), None, "still uncacheable");
    }

    #[test]
    fn erased_jobs_are_uncacheable() {
        use hyperspace_recursion::{FnProgram, Rec};
        let p = FnProgram::new(|n: u64| -> Rec<u64, u64> { Rec::done(n) });
        let spec = JobSpec::new(JobKind::erased("identity", p, 3));
        assert_eq!(spec.cache_key(), None);
        assert_eq!(spec.kind.label(), "identity");
    }

    #[test]
    fn dimacs_round_trip_feeds_sat_jobs() {
        let cnf = gen::uf20_91(5);
        let text = dimacs::to_string(&cnf);
        let kind = JobKind::sat_dimacs(&text).expect("valid dimacs");
        let direct = JobKind::sat(cnf);
        assert_eq!(
            JobSpec::new(kind).cache_key(),
            JobSpec::new(direct).cache_key()
        );
    }

    #[test]
    fn objective_and_prune_are_part_of_the_cache_key() {
        let spec = |objective: ObjectiveSpec, prune: PruneSpec| {
            JobSpec::new(JobKind::bnb_knapsack(
                vec![Item {
                    weight: 2,
                    value: 3,
                }],
                5,
            ))
            .objective(objective)
            .prune(prune)
        };
        let a = spec(ObjectiveSpec::Maximise, PruneSpec::incumbent());
        let b = spec(ObjectiveSpec::Maximise, PruneSpec::incumbent());
        assert_eq!(a.cache_key(), b.cache_key());
        // Different objective, different prune policy, different warm
        // start: all distinct computations.
        let c = spec(ObjectiveSpec::Enumerate, PruneSpec::incumbent());
        let d = spec(ObjectiveSpec::Maximise, PruneSpec::Off);
        let e = spec(
            ObjectiveSpec::Maximise,
            PruneSpec::Incumbent { initial: Some(9) },
        );
        assert_ne!(a.cache_key(), c.cache_key());
        assert_ne!(a.cache_key(), d.cache_key());
        assert_ne!(a.cache_key(), e.cache_key());
        // The backend still does not split the cache.
        let f =
            spec(ObjectiveSpec::Maximise, PruneSpec::incumbent()).backend(BackendSpec::sharded(4));
        assert_eq!(a.cache_key(), f.cache_key());
    }

    #[test]
    fn bnb_kinds_have_distinct_tokens_from_plain_knapsack() {
        let items = vec![Item {
            weight: 1,
            value: 2,
        }];
        let plain = JobSpec::new(JobKind::knapsack(items.clone(), 5));
        let bnb = JobSpec::new(JobKind::bnb_knapsack(items, 5));
        assert_ne!(plain.cache_key(), bnb.cache_key());
        let tsp = JobSpec::new(JobKind::tsp(TspInstance::random(1, 4, 10)));
        assert!(tsp.cache_key().is_some());
        assert_eq!(tsp.kind.label(), "tsp");
    }

    #[test]
    fn random_heuristic_seed_splits_the_cache() {
        // Regression: `Heuristic::Random` used to render as "random"
        // with the seed dropped, so two genuinely different solver
        // configurations shared one cache entry.
        let spec = |seed: u64| {
            JobSpec::new(JobKind::sat_with(
                gen::uf20_91(1),
                Heuristic::Random(seed),
                SimplifyMode::Fixpoint,
            ))
        };
        assert_ne!(spec(1).cache_key(), spec(2).cache_key());
        assert_eq!(spec(1).cache_key(), spec(1).cache_key());
    }

    #[test]
    fn jobs_differing_only_in_heuristic_or_mode_never_share_a_cache_entry() {
        // Satellite audit: every solver-relevant JobSpec field must
        // split the key.
        let base = || gen::uf20_91(1);
        let mut keys = vec![
            JobSpec::new(JobKind::sat_with(
                base(),
                Heuristic::JeroslowWang,
                SimplifyMode::Fixpoint,
            ))
            .cache_key(),
            JobSpec::new(JobKind::sat_with(
                base(),
                Heuristic::Dlis,
                SimplifyMode::Fixpoint,
            ))
            .cache_key(),
            JobSpec::new(JobKind::sat_with(
                base(),
                Heuristic::JeroslowWang,
                SimplifyMode::SplitOnly,
            ))
            .cache_key(),
        ];
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 3, "heuristic/mode must each split the key");
    }

    #[test]
    fn portfolio_member_set_is_part_of_the_cache_key() {
        use hyperspace_core::{PortfolioSpec, StrategySpec};
        let single = JobSpec::new(JobKind::sat(gen::uf20_91(1)));
        let folio =
            |spec: PortfolioSpec| JobSpec::new(JobKind::sat(gen::uf20_91(1))).portfolio(spec);
        let two = folio(PortfolioSpec::diversified_sat(2));
        let three = folio(PortfolioSpec::diversified_sat(3));
        assert_ne!(single.cache_key(), two.cache_key());
        assert_ne!(two.cache_key(), three.cache_key());
        assert_eq!(
            two.cache_key(),
            folio(PortfolioSpec::diversified_sat(2)).cache_key()
        );
        // Member backends are bit-identical and must not split the
        // cache; any other member knob must.
        let seq_members = folio(PortfolioSpec::new(vec![StrategySpec::mesh()]));
        let sharded_members = folio(PortfolioSpec::new(vec![
            StrategySpec::mesh().with_backend(BackendSpec::sharded(4))
        ]));
        assert_eq!(seq_members.cache_key(), sharded_members.cache_key());
        let reseeded = folio(PortfolioSpec::new(vec![StrategySpec::mesh().with_seed(9)]));
        assert_ne!(seq_members.cache_key(), reseeded.cache_key());
    }

    #[test]
    fn superseded_kind_level_sat_knobs_do_not_split_portfolio_caches() {
        use hyperspace_core::PortfolioSpec;
        // A SAT portfolio takes its solver knobs from the member
        // strategies; two submissions differing only in the ignored
        // kind-level heuristic/mode are the same computation.
        let folio = |heuristic: Heuristic, mode: SimplifyMode| {
            JobSpec::new(JobKind::sat_with(gen::uf20_91(1), heuristic, mode))
                .portfolio(PortfolioSpec::diversified_sat(3))
        };
        let a = folio(Heuristic::JeroslowWang, SimplifyMode::Fixpoint);
        let b = folio(Heuristic::Dlis, SimplifyMode::SplitOnly);
        assert_eq!(a.cache_key(), b.cache_key());
        // Without a portfolio the kind-level knobs matter as before.
        let c = JobSpec::new(JobKind::sat_with(
            gen::uf20_91(1),
            Heuristic::JeroslowWang,
            SimplifyMode::Fixpoint,
        ));
        let d = JobSpec::new(JobKind::sat_with(
            gen::uf20_91(1),
            Heuristic::Dlis,
            SimplifyMode::Fixpoint,
        ));
        assert_ne!(c.cache_key(), d.cache_key());
        // And the portfolio key never collides with a single-stack key.
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn scalar_kinds_have_distinct_keys() {
        let keys: Vec<Option<String>> = [
            JobKind::fib(10),
            JobKind::sum(10),
            JobKind::nqueens(6),
            JobKind::knapsack(
                vec![Item {
                    weight: 1,
                    value: 2,
                }],
                5,
            ),
        ]
        .into_iter()
        .map(|k| JobSpec::new(k).cache_key())
        .collect();
        for (i, a) in keys.iter().enumerate() {
            assert!(a.is_some());
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
