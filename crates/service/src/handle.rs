//! [`JobHandle`]: the submitter's side of a job.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use hyperspace_sim::StopHandle;

use crate::job::JobResult;

/// Lifecycle of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the priority queue.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished; the result is available.
    Done,
}

/// State shared between a [`JobHandle`] and the worker pool.
pub(crate) struct JobShared {
    pub(crate) id: u64,
    /// Trips the step loop of a running solve (cancellation; workers
    /// attach the deadline on top when they pick the job up).
    pub(crate) stop: StopHandle,
    /// Distinguishes submitter cancellation from deadline expiry when a
    /// run ends `Stopped`.
    pub(crate) cancelled: AtomicBool,
    /// One-shot request to park the job back into the queue at its next
    /// checkpoint barrier (checkpointed jobs only; cleared when
    /// honoured).
    pub(crate) suspend: AtomicBool,
    pub(crate) state: Mutex<(JobStatus, Option<JobResult>)>,
    pub(crate) done: Condvar,
}

impl JobShared {
    pub(crate) fn new(id: u64) -> Arc<JobShared> {
        Arc::new(JobShared {
            id,
            stop: StopHandle::new(),
            cancelled: AtomicBool::new(false),
            suspend: AtomicBool::new(false),
            state: Mutex::new((JobStatus::Queued, None)),
            done: Condvar::new(),
        })
    }

    pub(crate) fn set_running(&self) {
        let mut state = self.state.lock().expect("job state poisoned");
        if state.0 == JobStatus::Queued {
            state.0 = JobStatus::Running;
        }
    }

    /// A preempted/suspended job goes back to the queue.
    pub(crate) fn set_queued(&self) {
        let mut state = self.state.lock().expect("job state poisoned");
        if state.0 == JobStatus::Running {
            state.0 = JobStatus::Queued;
        }
    }

    pub(crate) fn finish(&self, result: JobResult) {
        let mut state = self.state.lock().expect("job state poisoned");
        debug_assert!(state.1.is_none(), "job finished twice");
        *state = (JobStatus::Done, Some(result));
        self.done.notify_all();
    }
}

/// Handle to a submitted job: poll, block, or cancel.
///
/// Cloning is cheap; every clone observes the same job.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) shared: Arc<JobShared>,
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.shared.state.lock().expect("job state poisoned").0
    }

    /// Requests cooperative cancellation: a queued job is dropped when a
    /// worker reaches it; a running job's step loop stops at the next
    /// step boundary. The eventual outcome is
    /// [`crate::JobOutcome::Cancelled`] (unless the job already
    /// finished).
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::SeqCst);
        self.shared.stop.stop();
    }

    /// Requests that a *running* job be suspended back into the
    /// priority queue at its next checkpoint barrier, letting other
    /// work overtake it; it resumes — bit-identically, from exactly
    /// where it stopped — once it reaches the head of the queue again.
    /// One-shot: the request is consumed when honoured. Only
    /// checkpointed jobs (a [`hyperspace_core::CheckpointSpec`]
    /// interval on the spec) have barriers to suspend at; for
    /// monolithic jobs this is a no-op.
    pub fn suspend(&self) {
        self.shared.suspend.store(true, Ordering::SeqCst);
    }

    /// The result, if the job already finished (non-blocking).
    pub fn try_result(&self) -> Option<JobResult> {
        self.shared
            .state
            .lock()
            .expect("job state poisoned")
            .1
            .clone()
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(&self) -> JobResult {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        while state.1.is_none() {
            state = self.shared.done.wait(state).expect("job state poisoned");
        }
        state.1.clone().expect("checked above")
    }

    /// Blocks up to `timeout` for the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("job state poisoned");
        while state.1.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .shared
                .done
                .wait_timeout(state, deadline - now)
                .expect("job state poisoned");
            state = next;
        }
        state.1.clone()
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id())
            .field("status", &self.status())
            .finish()
    }
}
