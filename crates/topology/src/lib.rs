//! Regular mesh topologies for *hyperspace computers*.
//!
//! A hyperspace computer (Tarawneh et al., ICPP P2S2 2017) is a massively
//! parallel machine whose cores form a regular mesh embedded in an
//! n-dimensional space — a torus, grid or hypercube — and exchange messages
//! only with immediate neighbours. This crate provides:
//!
//! * the [`Topology`] trait: node counts, neighbourhoods, shortest-path
//!   distances and deterministic minimal routing;
//! * concrete topologies: [`Torus`] (any dimension, the paper evaluates 2-D
//!   and 3-D), [`Grid`] (non-wrapping transputer array), [`Hypercube`]
//!   (NCUBE-style binary n-cube) and [`FullyConnected`] (the paper's
//!   baseline);
//! * [`Csr`]: a compressed-sparse-row adjacency cache for hot neighbour
//!   lookups;
//! * [`routing`]: explicit path enumeration built on `next_hop`;
//! * [`embedding`]: classic Gray-code embeddings of rings and grids into
//!   hypercubes.
//!
//! All topologies are `Send + Sync` value types; node identifiers are plain
//! `u32`s in `0..num_nodes`.
//!
//! # Example
//!
//! ```
//! use hyperspace_topology::{Topology, Torus};
//!
//! let t = Torus::new_2d(14, 14); // the paper's 196-core machine
//! assert_eq!(t.num_nodes(), 196);
//! assert_eq!(t.degree(0), 4);
//! // Opposite corner is 7+7 hops away thanks to wrap-around links.
//! let far = t.coords_to_node(&[7, 7]);
//! assert_eq!(t.distance(0, far), 14);
//! ```

#![warn(missing_docs)]

mod coords;
mod csr;
pub mod embedding;
mod full;
mod grid;
mod hypercube;
pub mod routing;
mod torus;

pub use coords::{Coords, MAX_DIMS};
pub use csr::Csr;
pub use full::FullyConnected;
pub use grid::Grid;
pub use hypercube::Hypercube;
pub use torus::{Ring, Torus};

/// Identifier of a node (core) in a hyperspace machine, in `0..num_nodes`.
pub type NodeId = u32;

/// A regular interconnect topology.
///
/// Implementations must be deterministic: `neighbour(n, p)` is a pure
/// function, and ports `0..degree(n)` enumerate the neighbourhood in a fixed
/// order (the mapping layer's round-robin mapper depends on this).
pub trait Topology: Send + Sync + std::fmt::Debug {
    /// Total number of nodes in the machine.
    fn num_nodes(&self) -> usize;

    /// Number of neighbours of `node`.
    fn degree(&self, node: NodeId) -> usize;

    /// The neighbour of `node` reachable through local port `port`
    /// (`port < degree(node)`).
    fn neighbour(&self, node: NodeId, port: usize) -> NodeId;

    /// Length (in hops) of a shortest path from `a` to `b`.
    fn distance(&self, a: NodeId, b: NodeId) -> u32;

    /// The next node on a deterministic shortest path from `from` to `to`.
    ///
    /// Must satisfy `distance(next_hop(from, to), to) == distance(from, to) - 1`
    /// whenever `from != to`. Calling it with `from == to` returns `from`.
    fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId;

    /// Maximum distance between any pair of nodes.
    fn diameter(&self) -> u32;

    /// Human-readable name, e.g. `"torus-14x14"`.
    fn name(&self) -> String;

    /// All neighbours of `node`, in port order.
    fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.degree(node))
            .map(|p| self.neighbour(node, p))
            .collect()
    }

    /// Whether `a` and `b` are joined by a direct link.
    fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && (0..self.degree(a)).any(|p| self.neighbour(a, p) == b)
    }

    /// The port of `a` whose link leads to `b`, if the two are adjacent.
    fn port_to(&self, a: NodeId, b: NodeId) -> Option<usize> {
        (0..self.degree(a)).find(|&p| self.neighbour(a, p) == b)
    }

    /// Total number of undirected links in the machine.
    fn num_links(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|n| self.degree(n))
            .sum::<usize>()
            / 2
    }
}

macro_rules! forward_topology {
    ($ty:ty) => {
        impl<T: Topology + ?Sized> Topology for $ty {
            fn num_nodes(&self) -> usize {
                (**self).num_nodes()
            }
            fn degree(&self, node: NodeId) -> usize {
                (**self).degree(node)
            }
            fn neighbour(&self, node: NodeId, port: usize) -> NodeId {
                (**self).neighbour(node, port)
            }
            fn distance(&self, a: NodeId, b: NodeId) -> u32 {
                (**self).distance(a, b)
            }
            fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
                (**self).next_hop(from, to)
            }
            fn diameter(&self) -> u32 {
                (**self).diameter()
            }
            fn name(&self) -> String {
                (**self).name()
            }
            fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
                (**self).neighbours(node)
            }
            fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
                (**self).are_adjacent(a, b)
            }
            fn port_to(&self, a: NodeId, b: NodeId) -> Option<usize> {
                (**self).port_to(a, b)
            }
            fn num_links(&self) -> usize {
                (**self).num_links()
            }
        }
    };
}

forward_topology!(&T);
forward_topology!(Box<T>);
forward_topology!(std::sync::Arc<T>);

/// Breadth-first distances from `from` to every node; an oracle used by the
/// test-suite to validate analytic `distance` implementations.
pub fn bfs_distances(topo: &dyn Topology, from: NodeId) -> Vec<u32> {
    let n = topo.num_nodes();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[from as usize] = 0;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for p in 0..topo.degree(u) {
            let v = topo.neighbour(u, p);
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn check_symmetry(topo: &dyn Topology) {
        for a in 0..topo.num_nodes() as NodeId {
            for p in 0..topo.degree(a) {
                let b = topo.neighbour(a, p);
                assert_ne!(a, b, "{}: self-loop at {a}", topo.name());
                assert!(
                    topo.are_adjacent(b, a),
                    "{}: asymmetric link {a}->{b}",
                    topo.name()
                );
            }
        }
    }

    fn check_distance_vs_bfs(topo: &dyn Topology) {
        let n = topo.num_nodes() as NodeId;
        for a in 0..n {
            let bfs = bfs_distances(topo, a);
            for b in 0..n {
                assert_eq!(
                    topo.distance(a, b),
                    bfs[b as usize],
                    "{}: distance({a},{b}) mismatch",
                    topo.name()
                );
            }
        }
    }

    fn check_next_hop(topo: &dyn Topology) {
        let n = topo.num_nodes() as NodeId;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    assert_eq!(topo.next_hop(a, b), a);
                    continue;
                }
                let h = topo.next_hop(a, b);
                assert!(topo.are_adjacent(a, h), "{}: hop not adjacent", topo.name());
                assert_eq!(
                    topo.distance(h, b),
                    topo.distance(a, b) - 1,
                    "{}: next_hop({a},{b}) not minimal",
                    topo.name()
                );
            }
        }
    }

    fn exercise(topo: &dyn Topology) {
        check_symmetry(topo);
        check_distance_vs_bfs(topo);
        check_next_hop(topo);
    }

    #[test]
    fn torus_2d_contract() {
        exercise(&Torus::new_2d(4, 5));
        exercise(&Torus::new_2d(3, 3));
        exercise(&Torus::new_2d(2, 6));
    }

    #[test]
    fn torus_3d_contract() {
        exercise(&Torus::new_3d(3, 3, 3));
        exercise(&Torus::new_3d(2, 3, 4));
    }

    #[test]
    fn torus_1d_contract() {
        exercise(&Torus::new(&[7]));
        exercise(&Ring::new(9));
    }

    #[test]
    fn grid_contract() {
        exercise(&Grid::new(&[4, 5]));
        exercise(&Grid::new(&[3, 3, 3]));
        exercise(&Grid::new(&[10]));
    }

    #[test]
    fn hypercube_contract() {
        exercise(&Hypercube::new(1));
        exercise(&Hypercube::new(3));
        exercise(&Hypercube::new(5));
    }

    #[test]
    fn full_contract() {
        exercise(&FullyConnected::new(2));
        exercise(&FullyConnected::new(17));
    }

    #[test]
    fn link_counts() {
        // nN/2 links for an n-dimensional hypercube with N nodes (paper §II-A).
        let h = Hypercube::new(4);
        assert_eq!(h.num_links(), 4 * 16 / 2);
        // k x k torus has 2k^2 links when k > 2.
        let t = Torus::new_2d(5, 5);
        assert_eq!(t.num_links(), 2 * 25);
        let f = FullyConnected::new(10);
        assert_eq!(f.num_links(), 45);
    }
}
