//! Classic topology embeddings (paper §II-A, refs \[14\]–\[16\]).
//!
//! Hypercubes "can embed other topologies including trees and
//! lower-dimensional meshes efficiently". This module implements the
//! standard constructions:
//!
//! * [`gray`]: the binary reflected Gray code, embedding a `2^n`-node ring
//!   into an `n`-cube with dilation 1;
//! * [`embed_grid_in_hypercube`]: per-dimension Gray codes embedding a grid
//!   whose sides are powers of two, dilation 1;
//! * [`binomial_tree_children`]: the binomial spanning tree rooted at node 0,
//!   the canonical broadcast tree of the hypercube;
//! * [`dilation`]: measures embedding quality (max stretch of any guest
//!   edge in the host).

use crate::{Hypercube, NodeId, Topology};

/// The `i`-th codeword of the binary reflected Gray code.
#[inline]
pub fn gray(i: u32) -> u32 {
    i ^ (i >> 1)
}

/// Inverse of [`gray`].
#[inline]
pub fn gray_inverse(mut g: u32) -> u32 {
    let mut i = g;
    while g > 0 {
        g >>= 1;
        i ^= g;
    }
    i
}

/// Embeds the `2^dim`-node ring into `Hypercube::new(dim)`: position `i` on
/// the ring maps to hypercube node `gray(i)`. Adjacent ring positions land
/// on adjacent hypercube nodes (dilation 1).
pub fn embed_ring_in_hypercube(dim: u32) -> Vec<NodeId> {
    let n = 1u32 << dim;
    (0..n).map(gray).collect()
}

/// Embeds a grid with power-of-two sides into the smallest hypercube of
/// matching size, using an independent Gray code per dimension.
///
/// Returns `mapping[guest_node] = host_node`. Panics unless every side is a
/// power of two (the classical dilation-1 condition; arbitrary sides need
/// dilation ≥ 2, see Chan \[14\]).
pub fn embed_grid_in_hypercube(sides: &[u32]) -> (Vec<NodeId>, Hypercube) {
    assert!(!sides.is_empty());
    let mut total_bits = 0u32;
    for &s in sides {
        assert!(s.is_power_of_two(), "grid side {s} is not a power of two");
        total_bits += s.trailing_zeros();
    }
    let host = Hypercube::new(total_bits.max(1));
    let guest_nodes: usize = sides.iter().map(|&s| s as usize).product();
    let mut mapping = Vec::with_capacity(guest_nodes);
    for node in 0..guest_nodes as u32 {
        // Decompose into per-dimension coordinates (dim 0 fastest), Gray-code
        // each, then concatenate the codewords into one host address.
        let mut rest = node;
        let mut addr = 0u32;
        let mut shift = 0u32;
        for &s in sides {
            let coord = rest % s;
            rest /= s;
            let bits = s.trailing_zeros();
            addr |= gray(coord) << shift;
            shift += bits;
        }
        mapping.push(addr);
    }
    (mapping, host)
}

/// Children of `node` in the binomial spanning tree of an `dim`-cube rooted
/// at node 0: flip each zero bit above the highest set bit.
///
/// Broadcasting down this tree reaches all `2^dim` nodes in `dim` steps.
pub fn binomial_tree_children(node: NodeId, dim: u32) -> Vec<NodeId> {
    // Children flip the zero bits below the node's lowest set bit; the root
    // (node 0) flips every bit.
    let limit = if node == 0 {
        dim
    } else {
        node.trailing_zeros()
    };
    (0..limit).map(|b| node | (1 << b)).collect()
}

/// Maximum host distance between images of guest-adjacent nodes.
///
/// A dilation of 1 means the embedding preserves adjacency exactly.
pub fn dilation(guest: &dyn Topology, host: &dyn Topology, mapping: &[NodeId]) -> u32 {
    assert_eq!(mapping.len(), guest.num_nodes());
    let mut worst = 0;
    for a in 0..guest.num_nodes() as NodeId {
        for p in 0..guest.degree(a) {
            let b = guest.neighbour(a, p);
            worst = worst.max(host.distance(mapping[a as usize], mapping[b as usize]));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grid, Ring};

    #[test]
    fn gray_code_adjacent_codewords_differ_by_one_bit() {
        for i in 0..255u32 {
            assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
        }
    }

    #[test]
    fn gray_inverse_roundtrip() {
        for i in 0..1024u32 {
            assert_eq!(gray_inverse(gray(i)), i);
        }
    }

    #[test]
    fn ring_embedding_has_dilation_one() {
        for dim in 2..6 {
            let mapping = embed_ring_in_hypercube(dim);
            let ring = Ring::new(1 << dim);
            let cube = Hypercube::new(dim);
            assert_eq!(dilation(&ring, &cube, &mapping), 1);
            // Mapping is a bijection.
            let mut sorted = mapping.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), mapping.len());
        }
    }

    #[test]
    fn grid_embedding_has_dilation_one() {
        let sides = [4u32, 8];
        let (mapping, cube) = embed_grid_in_hypercube(&sides);
        let grid = Grid::new(&sides);
        assert_eq!(cube.num_nodes(), grid.num_nodes());
        assert_eq!(dilation(&grid, &cube, &mapping), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_grid_rejected() {
        embed_grid_in_hypercube(&[3, 4]);
    }

    #[test]
    fn binomial_tree_spans_cube() {
        let dim = 4;
        let mut seen = vec![false; 1 << dim];
        let mut stack = vec![0u32];
        let mut edges = 0;
        while let Some(n) = stack.pop() {
            assert!(!seen[n as usize], "node {n} visited twice");
            seen[n as usize] = true;
            for c in binomial_tree_children(n, dim) {
                edges += 1;
                stack.push(c);
            }
        }
        assert!(seen.iter().all(|&v| v));
        assert_eq!(edges, (1 << dim) - 1);
    }

    #[test]
    fn binomial_tree_children_are_adjacent() {
        let dim = 5;
        let cube = Hypercube::new(dim);
        for n in 0..cube.num_nodes() as NodeId {
            for c in binomial_tree_children(n, dim) {
                assert!(cube.are_adjacent(n, c));
            }
        }
    }
}
