//! Non-wrapping n-dimensional grids (transputer arrays, Figure 1A).

use crate::coords::{coords_to_node, node_to_coords, Coords};
use crate::{NodeId, Topology};

/// An n-dimensional grid *without* wrap-around links.
///
/// Unlike the torus, grids are not node-symmetric: corner and edge nodes
/// have lower degree, so ports are computed per node.
#[derive(Clone, Debug)]
pub struct Grid {
    dims: Vec<u32>,
    num_nodes: usize,
}

impl Grid {
    /// Creates a grid with the given per-dimension sizes.
    pub fn new(dims: &[u32]) -> Self {
        assert!(!dims.is_empty(), "grid needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        let num_nodes = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d as usize))
            .expect("node count overflow");
        assert!(num_nodes <= u32::MAX as usize, "too many nodes");
        Grid {
            dims: dims.to_vec(),
            num_nodes,
        }
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Coordinates of `node`.
    pub fn node_coords(&self, node: NodeId) -> Coords {
        node_to_coords(node, &self.dims)
    }

    /// Node at the given coordinates.
    pub fn coords_to_node(&self, coords: &[u32]) -> NodeId {
        coords_to_node(coords, &self.dims)
    }

    /// Enumerates the valid (dimension, delta) moves from `coords`.
    fn moves(&self, coords: &Coords) -> impl Iterator<Item = (usize, i32)> + '_ {
        let coords = *coords;
        (0..self.dims.len()).flat_map(move |d| {
            let mut out = [None, None];
            if coords[d] + 1 < self.dims[d] {
                out[0] = Some((d, 1));
            }
            if coords[d] > 0 {
                out[1] = Some((d, -1));
            }
            out.into_iter().flatten()
        })
    }
}

impl Topology for Grid {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn degree(&self, node: NodeId) -> usize {
        let c = self.node_coords(node);
        self.moves(&c).count()
    }

    fn neighbour(&self, node: NodeId, port: usize) -> NodeId {
        let c = self.node_coords(node);
        let (dim, delta) = self
            .moves(&c)
            .nth(port)
            .expect("port out of range for grid node");
        let mut c2 = c;
        *c2.get_mut(dim) = (c[dim] as i64 + delta as i64) as u32;
        coords_to_node(c2.as_slice(), &self.dims)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.node_coords(a);
        let cb = self.node_coords(b);
        (0..self.dims.len()).map(|d| ca[d].abs_diff(cb[d])).sum()
    }

    fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        if from == to {
            return from;
        }
        let cf = self.node_coords(from);
        let ct = self.node_coords(to);
        for d in 0..self.dims.len() {
            if cf[d] != ct[d] {
                let mut c = cf;
                *c.get_mut(d) = if ct[d] > cf[d] { cf[d] + 1 } else { cf[d] - 1 };
                return coords_to_node(c.as_slice(), &self.dims);
            }
        }
        unreachable!("from != to but no differing dimension");
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|&s| s - 1).sum()
    }

    fn name(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        format!("grid-{}", dims.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_edge_interior_degrees() {
        let g = Grid::new(&[4, 4]);
        assert_eq!(g.degree(g.coords_to_node(&[0, 0])), 2); // corner
        assert_eq!(g.degree(g.coords_to_node(&[1, 0])), 3); // edge
        assert_eq!(g.degree(g.coords_to_node(&[1, 1])), 4); // interior
    }

    #[test]
    fn manhattan_distance() {
        let g = Grid::new(&[5, 5]);
        let a = g.coords_to_node(&[0, 0]);
        let b = g.coords_to_node(&[4, 4]);
        assert_eq!(g.distance(a, b), 8);
        assert_eq!(g.diameter(), 8);
    }

    #[test]
    fn no_wraparound() {
        let g = Grid::new(&[4, 4]);
        let corner = g.coords_to_node(&[0, 0]);
        let far = g.coords_to_node(&[3, 0]);
        assert!(!g.are_adjacent(corner, far));
        assert_eq!(g.distance(corner, far), 3);
    }

    #[test]
    fn line_graph() {
        let g = Grid::new(&[6]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.distance(0, 5), 5);
        assert_eq!(g.name(), "grid-6");
    }
}
