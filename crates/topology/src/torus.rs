//! n-dimensional torus (hyper-torus) topologies.
//!
//! The paper's SpiNNaker-style machines (§V-A) are 2-D and 3-D tori: each
//! dimension wraps around, so every node has `2d` neighbours (fewer when a
//! dimension has size 1 or 2, where the two directions coincide).

use crate::coords::{coords_to_node, node_to_coords, Coords};
use crate::{NodeId, Topology};

/// An n-dimensional torus with per-dimension sizes `dims`.
///
/// Node `i`'s coordinates are the mixed-radix digits of `i` (dimension 0
/// fastest). Ports enumerate `(dim 0, +1), (dim 0, -1), (dim 1, +1), ...`,
/// skipping directions that would duplicate a link (size-2 dimensions) or
/// self-loop (size-1 dimensions).
#[derive(Clone, Debug)]
pub struct Torus {
    dims: Vec<u32>,
    num_nodes: usize,
    /// Port table template: (dimension, delta) pairs, identical for every
    /// node because tori are node-symmetric.
    ports: Vec<(usize, i32)>,
}

impl Torus {
    /// Creates a torus with the given per-dimension sizes.
    ///
    /// Panics if `dims` is empty, any dimension is zero, or the node count
    /// overflows `u32`.
    pub fn new(dims: &[u32]) -> Self {
        assert!(!dims.is_empty(), "torus needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        let num_nodes = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d as usize))
            .expect("node count overflow");
        assert!(num_nodes <= u32::MAX as usize, "too many nodes");
        let mut ports = Vec::with_capacity(dims.len() * 2);
        for (d, &size) in dims.iter().enumerate() {
            match size {
                1 => {}                  // self-loop: no link
                2 => ports.push((d, 1)), // +1 and -1 coincide
                _ => {
                    ports.push((d, 1));
                    ports.push((d, -1));
                }
            }
        }
        Torus {
            dims: dims.to_vec(),
            num_nodes,
            ports,
        }
    }

    /// Convenience constructor for the paper's 2-D machines (`w x h`).
    pub fn new_2d(w: u32, h: u32) -> Self {
        Torus::new(&[w, h])
    }

    /// Convenience constructor for the paper's 3-D machines (`x*y*z`).
    pub fn new_3d(x: u32, y: u32, z: u32) -> Self {
        Torus::new(&[x, y, z])
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Coordinates of `node`.
    pub fn node_coords(&self, node: NodeId) -> Coords {
        node_to_coords(node, &self.dims)
    }

    /// Node at the given coordinates.
    pub fn coords_to_node(&self, coords: &[u32]) -> NodeId {
        coords_to_node(coords, &self.dims)
    }

    #[inline]
    fn wrap_step(&self, coord: u32, dim: usize, delta: i32) -> u32 {
        let size = self.dims[dim];
        if delta > 0 {
            if coord + 1 == size {
                0
            } else {
                coord + 1
            }
        } else if coord == 0 {
            size - 1
        } else {
            coord - 1
        }
    }

    /// Signed shortest displacement from `a` to `b` along `dim`
    /// (positive = step `+1` direction; ties broken towards `+`).
    #[inline]
    fn arc(&self, a: u32, b: u32, dim: usize) -> i32 {
        let size = self.dims[dim] as i32;
        let fwd = (b as i32 - a as i32).rem_euclid(size);
        if fwd * 2 <= size {
            fwd
        } else {
            fwd - size
        }
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn degree(&self, _node: NodeId) -> usize {
        self.ports.len()
    }

    fn neighbour(&self, node: NodeId, port: usize) -> NodeId {
        let (dim, delta) = self.ports[port];
        let mut c = self.node_coords(node);
        *c.get_mut(dim) = self.wrap_step(c[dim], dim, delta);
        coords_to_node(c.as_slice(), &self.dims)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.node_coords(a);
        let cb = self.node_coords(b);
        (0..self.dims.len())
            .map(|d| self.arc(ca[d], cb[d], d).unsigned_abs())
            .sum()
    }

    fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        if from == to {
            return from;
        }
        // Dimension-ordered routing: correct the lowest differing dimension
        // first, stepping along the shorter arc.
        let cf = self.node_coords(from);
        let ct = self.node_coords(to);
        for d in 0..self.dims.len() {
            let step = self.arc(cf[d], ct[d], d);
            if step != 0 {
                let mut c = cf;
                *c.get_mut(d) = self.wrap_step(cf[d], d, step.signum());
                return coords_to_node(c.as_slice(), &self.dims);
            }
        }
        unreachable!("from != to but no differing dimension");
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|&s| s / 2).sum()
    }

    fn name(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        format!("torus-{}", dims.join("x"))
    }
}

/// A 1-dimensional torus: the classic ring network.
#[derive(Clone, Debug)]
pub struct Ring(Torus);

impl Ring {
    /// A ring of `n` nodes.
    pub fn new(n: u32) -> Self {
        Ring(Torus::new(&[n]))
    }
}

impl Topology for Ring {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }
    fn degree(&self, node: NodeId) -> usize {
        self.0.degree(node)
    }
    fn neighbour(&self, node: NodeId, port: usize) -> NodeId {
        self.0.neighbour(node, port)
    }
    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.0.distance(a, b)
    }
    fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        self.0.next_hop(from, to)
    }
    fn diameter(&self) -> u32 {
        self.0.diameter()
    }
    fn name(&self) -> String {
        format!("ring-{}", self.0.num_nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_2d_neighbours() {
        let t = Torus::new_2d(4, 4);
        // Node 0 = (0,0): +x -> 1, -x -> 3, +y -> 4, -y -> 12.
        let n = t.neighbours(0);
        assert_eq!(n, vec![1, 3, 4, 12]);
        assert_eq!(t.degree(0), 4);
    }

    #[test]
    fn wraparound_distance() {
        let t = Torus::new_2d(8, 8);
        let a = t.coords_to_node(&[0, 0]);
        let b = t.coords_to_node(&[7, 7]);
        // One wrap hop in each dimension.
        assert_eq!(t.distance(a, b), 2);
        assert_eq!(t.diameter(), 8);
    }

    #[test]
    fn size_two_dimension_merges_ports() {
        let t = Torus::new(&[2, 3]);
        // Dimension 0 contributes a single port, dimension 1 two.
        assert_eq!(t.degree(0), 3);
        let n = t.neighbours(0);
        assert_eq!(n.len(), 3);
        // No duplicate neighbours.
        let mut s = n.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn size_one_dimension_has_no_link() {
        let t = Torus::new(&[1, 5]);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.degree(0), 2);
    }

    #[test]
    fn node_symmetry_of_degree() {
        let t = Torus::new_3d(3, 4, 5);
        let d0 = t.degree(0);
        for n in 0..t.num_nodes() as NodeId {
            assert_eq!(t.degree(n), d0);
        }
    }

    #[test]
    fn dimension_ordered_route_terminates() {
        let t = Torus::new_3d(4, 4, 4);
        let (mut cur, to) = (0, 63);
        let mut hops = 0;
        while cur != to {
            cur = t.next_hop(cur, to);
            hops += 1;
            assert!(hops <= t.diameter());
        }
        assert_eq!(hops, t.distance(0, 63));
    }

    #[test]
    fn ring_is_one_dimensional_torus() {
        let r = Ring::new(6);
        assert_eq!(r.num_nodes(), 6);
        assert_eq!(r.degree(0), 2);
        assert_eq!(r.distance(0, 3), 3);
        assert_eq!(r.distance(0, 5), 1);
        assert_eq!(r.diameter(), 3);
        assert_eq!(r.name(), "ring-6");
    }

    #[test]
    fn names() {
        assert_eq!(Torus::new_2d(14, 14).name(), "torus-14x14");
        assert_eq!(Torus::new_3d(6, 6, 6).name(), "torus-6x6x6");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_panic() {
        Torus::new(&[]);
    }
}
