//! Fixed-capacity coordinate vectors.
//!
//! Torus and grid topologies address nodes by a small tuple of per-dimension
//! coordinates. Neighbour and routing computations run in the simulator's
//! innermost loop, so coordinates use an inline fixed-size buffer rather than
//! a heap `Vec`.

/// Maximum number of mesh dimensions supported by [`Coords`].
///
/// Eight dimensions covers every machine in the paper (2-D/3-D tori) with
/// generous headroom for experimentation; a 2^8-node binary hypercube is
/// expressed via [`crate::Hypercube`] instead.
pub const MAX_DIMS: usize = 8;

/// A small inline vector of per-dimension coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coords {
    buf: [u32; MAX_DIMS],
    len: u8,
}

impl Coords {
    /// Creates coordinates from a slice. Panics if `vals.len() > MAX_DIMS`.
    pub fn from_slice(vals: &[u32]) -> Self {
        assert!(
            vals.len() <= MAX_DIMS,
            "at most {MAX_DIMS} dimensions supported, got {}",
            vals.len()
        );
        let mut buf = [0u32; MAX_DIMS];
        buf[..vals.len()].copy_from_slice(vals);
        Coords {
            buf,
            len: vals.len() as u8,
        }
    }

    /// All-zero coordinates of dimension `dims`.
    pub fn zero(dims: usize) -> Self {
        assert!(dims <= MAX_DIMS);
        Coords {
            buf: [0; MAX_DIMS],
            len: dims as u8,
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when holding zero dimensions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len as usize]
    }

    /// Mutable access to the coordinate in dimension `d`.
    #[inline]
    pub fn get_mut(&mut self, d: usize) -> &mut u32 {
        debug_assert!(d < self.len as usize);
        &mut self.buf[d]
    }
}

impl std::ops::Index<usize> for Coords {
    type Output = u32;
    #[inline]
    fn index(&self, d: usize) -> &u32 {
        debug_assert!(d < self.len as usize);
        &self.buf[d]
    }
}

impl std::fmt::Debug for Coords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Converts a linear node index into mixed-radix coordinates over `dims`
/// (dimension 0 is the fastest-varying digit).
#[inline]
pub fn node_to_coords(node: u32, dims: &[u32]) -> Coords {
    let mut c = Coords::zero(dims.len());
    let mut rest = node;
    for (d, &size) in dims.iter().enumerate() {
        *c.get_mut(d) = rest % size;
        rest /= size;
    }
    debug_assert_eq!(rest, 0, "node index out of range");
    c
}

/// Converts mixed-radix coordinates back into a linear node index.
#[inline]
pub fn coords_to_node(coords: &[u32], dims: &[u32]) -> u32 {
    debug_assert_eq!(coords.len(), dims.len());
    let mut idx = 0u32;
    for d in (0..dims.len()).rev() {
        debug_assert!(coords[d] < dims[d], "coordinate out of range");
        idx = idx * dims[d] + coords[d];
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_nodes() {
        let dims = [3u32, 4, 5];
        for node in 0..60u32 {
            let c = node_to_coords(node, &dims);
            assert_eq!(coords_to_node(c.as_slice(), &dims), node);
        }
    }

    #[test]
    fn fastest_dimension_is_first() {
        let dims = [4u32, 4];
        assert_eq!(node_to_coords(1, &dims).as_slice(), &[1, 0]);
        assert_eq!(node_to_coords(4, &dims).as_slice(), &[0, 1]);
        assert_eq!(node_to_coords(5, &dims).as_slice(), &[1, 1]);
    }

    #[test]
    fn coords_basic_ops() {
        let mut c = Coords::from_slice(&[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c[2], 3);
        *c.get_mut(0) = 9;
        assert_eq!(c.as_slice(), &[9, 2, 3]);
        assert_eq!(format!("{c:?}"), "[9, 2, 3]");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_dims_panics() {
        Coords::from_slice(&[0; MAX_DIMS + 1]);
    }
}
