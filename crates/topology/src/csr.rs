//! Compressed-sparse-row adjacency cache.
//!
//! The simulator's mapping layer consults neighbour lists on every message;
//! computing them through the [`Topology`] trait each time costs a virtual
//! dispatch plus coordinate arithmetic. [`Csr`] precomputes the whole
//! adjacency structure once into two flat arrays, giving cache-friendly
//! O(1) slice lookups — the standard HPC graph layout.

use crate::{NodeId, Topology};

/// Precomputed adjacency lists in CSR (compressed sparse row) form.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds the CSR image of `topo`'s adjacency structure.
    pub fn build(topo: &dyn Topology) -> Self {
        let n = topo.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for node in 0..n as NodeId {
            total += topo.degree(node) as u32;
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total as usize);
        for node in 0..n as NodeId {
            for port in 0..topo.degree(node) {
                targets.push(topo.neighbour(node, port));
            }
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbours of `node`, in port order.
    #[inline]
    pub fn neighbours(&self, node: NodeId) -> &[NodeId] {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        (self.offsets[node as usize + 1] - self.offsets[node as usize]) as usize
    }

    /// Whether `a` lists `b` as a neighbour.
    #[inline]
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbours(a).contains(&b)
    }

    /// Total directed edge count (twice the link count for undirected graphs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FullyConnected, Hypercube, Torus};

    fn check_matches(topo: &dyn Topology) {
        let csr = Csr::build(topo);
        assert_eq!(csr.num_nodes(), topo.num_nodes());
        for node in 0..topo.num_nodes() as NodeId {
            assert_eq!(csr.neighbours(node), topo.neighbours(node).as_slice());
            assert_eq!(csr.degree(node), topo.degree(node));
        }
    }

    #[test]
    fn csr_matches_trait_torus() {
        check_matches(&Torus::new_2d(6, 5));
        check_matches(&Torus::new_3d(3, 3, 3));
    }

    #[test]
    fn csr_matches_trait_hypercube() {
        check_matches(&Hypercube::new(4));
    }

    #[test]
    fn csr_matches_trait_full() {
        check_matches(&FullyConnected::new(9));
    }

    #[test]
    fn edge_count() {
        let t = Torus::new_2d(4, 4);
        let csr = Csr::build(&t);
        assert_eq!(csr.num_edges(), 2 * t.num_links());
    }
}
