//! Path enumeration on top of [`Topology::next_hop`].
//!
//! The simulator's routed delivery model moves messages one hop per step
//! along these deterministic minimal paths; this module exposes them for
//! inspection, testing and link-load analysis.

use crate::{NodeId, Topology};

/// The full deterministic shortest path from `from` to `to`, inclusive of
/// both endpoints. `route(t, a, a) == [a]`.
pub fn route(topo: &dyn Topology, from: NodeId, to: NodeId) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(topo.distance(from, to) as usize + 1);
    let mut cur = from;
    path.push(cur);
    let mut fuel = topo.diameter() + 1;
    while cur != to {
        assert!(fuel > 0, "routing did not converge: {} -> {}", from, to);
        fuel -= 1;
        cur = topo.next_hop(cur, to);
        path.push(cur);
    }
    path
}

/// Number of hops on the deterministic route (== `topo.distance` for
/// well-formed topologies; asserted in tests).
pub fn route_len(topo: &dyn Topology, from: NodeId, to: NodeId) -> u32 {
    (route(topo, from, to).len() - 1) as u32
}

/// Per-link traffic counts induced by routing one message for every
/// (source, destination) pair: a simple static congestion model.
///
/// Returns a map from directed link `(u, v)` to the number of routes
/// traversing it. Useful for comparing how evenly different topologies
/// spread uniform traffic.
pub fn uniform_link_loads(topo: &dyn Topology) -> std::collections::HashMap<(NodeId, NodeId), u32> {
    let n = topo.num_nodes() as NodeId;
    let mut loads = std::collections::HashMap::new();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let path = route(topo, a, b);
            for w in path.windows(2) {
                *loads.entry((w[0], w[1])).or_insert(0) += 1;
            }
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FullyConnected, Grid, Hypercube, Torus};

    fn check_routes(topo: &dyn Topology) {
        let n = topo.num_nodes() as NodeId;
        for a in 0..n {
            for b in 0..n {
                let path = route(topo, a, b);
                assert_eq!(path[0], a);
                assert_eq!(*path.last().unwrap(), b);
                assert_eq!(path.len() as u32 - 1, topo.distance(a, b));
                for w in path.windows(2) {
                    assert!(topo.are_adjacent(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn routes_are_shortest_paths() {
        check_routes(&Torus::new_2d(4, 5));
        check_routes(&Torus::new_3d(3, 3, 2));
        check_routes(&Grid::new(&[4, 4]));
        check_routes(&Hypercube::new(4));
        check_routes(&FullyConnected::new(8));
    }

    #[test]
    fn trivial_route() {
        let t = Torus::new_2d(3, 3);
        assert_eq!(route(&t, 4, 4), vec![4]);
        assert_eq!(route_len(&t, 4, 4), 0);
    }

    #[test]
    fn torus_uniform_loads_conserve_total_distance() {
        // Every hop of every route crosses exactly one link, so the summed
        // link loads equal the summed pairwise distances. (Loads are *not*
        // uniform on even-sided tori: dimension-ordered routing breaks
        // half-way ties towards the + direction.)
        let t = Torus::new_2d(4, 4);
        let loads = uniform_link_loads(&t);
        let load_total: u32 = loads.values().sum();
        let n = t.num_nodes() as NodeId;
        let dist_total: u32 = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| t.distance(a, b))
            .sum();
        assert_eq!(load_total, dist_total);
        // Odd-sided tori have no ties, so node symmetry does make uniform
        // traffic perfectly balanced there.
        let t5 = Torus::new_2d(5, 5);
        let loads5 = uniform_link_loads(&t5);
        let vals: Vec<u32> = loads5.values().copied().collect();
        assert_eq!(vals.iter().min(), vals.iter().max());
    }
}
