//! Fully-connected machines: the paper's scalability baseline (§V-A).

use crate::{NodeId, Topology};

/// A machine in which every pair of nodes is joined by a direct link.
///
/// Physically unrealisable at scale (which is the paper's point), but serves
/// as the upper-bound baseline in the Figure 4 experiments.
#[derive(Clone, Debug)]
pub struct FullyConnected {
    n: u32,
}

impl FullyConnected {
    /// Creates a fully connected machine of `n >= 2` nodes.
    pub fn new(n: u32) -> Self {
        assert!(n >= 2, "need at least two nodes");
        FullyConnected { n }
    }
}

impl Topology for FullyConnected {
    fn num_nodes(&self) -> usize {
        self.n as usize
    }

    fn degree(&self, _node: NodeId) -> usize {
        (self.n - 1) as usize
    }

    fn neighbour(&self, node: NodeId, port: usize) -> NodeId {
        // Ports enumerate all other nodes in ascending id order.
        let p = port as u32;
        if p < node {
            p
        } else {
            p + 1
        }
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        u32::from(a != b)
    }

    fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        if from == to {
            from
        } else {
            to
        }
    }

    fn diameter(&self) -> u32 {
        1
    }

    fn name(&self) -> String {
        format!("full-{}", self.n)
    }

    fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && a < self.n && b < self.n
    }

    fn port_to(&self, a: NodeId, b: NodeId) -> Option<usize> {
        if a == b || b >= self.n {
            None
        } else if b < a {
            Some(b as usize)
        } else {
            Some((b - 1) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_enumerate_everyone_else() {
        let f = FullyConnected::new(5);
        assert_eq!(f.neighbours(2), vec![0, 1, 3, 4]);
        assert_eq!(f.neighbours(0), vec![1, 2, 3, 4]);
        assert_eq!(f.neighbours(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn port_to_inverts_neighbour() {
        let f = FullyConnected::new(7);
        for a in 0..7 {
            for p in 0..f.degree(a) {
                let b = f.neighbour(a, p);
                assert_eq!(f.port_to(a, b), Some(p));
            }
            assert_eq!(f.port_to(a, a), None);
        }
    }

    #[test]
    fn unit_distances() {
        let f = FullyConnected::new(4);
        assert_eq!(f.distance(1, 1), 0);
        assert_eq!(f.distance(0, 3), 1);
        assert_eq!(f.diameter(), 1);
        assert_eq!(f.next_hop(0, 3), 3);
    }
}
