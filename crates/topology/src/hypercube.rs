//! Binary n-cube (hypercube) topologies, NCUBE-style (Figure 1B).
//!
//! Nodes carry n-bit addresses; two nodes are adjacent iff their addresses
//! differ in exactly one bit (§II-A). Distance is the Hamming distance and
//! routing is e-cube: correct the lowest differing bit first.

use crate::{NodeId, Topology};

/// A binary hypercube of dimension `dim`, containing `2^dim` nodes.
#[derive(Clone, Debug)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Creates a hypercube with `2^dim` nodes. `dim` must be in `1..=31`.
    pub fn new(dim: u32) -> Self {
        assert!(
            (1..=31).contains(&dim),
            "hypercube dimension must be 1..=31"
        );
        Hypercube { dim }
    }

    /// The dimension `n` such that the machine has `2^n` nodes.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The smallest hypercube holding at least `n` nodes.
    pub fn fitting(n: usize) -> Self {
        assert!(n >= 2);
        let dim = (usize::BITS - (n - 1).leading_zeros()).max(1);
        Hypercube::new(dim)
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1usize << self.dim
    }

    fn degree(&self, _node: NodeId) -> usize {
        self.dim as usize
    }

    fn neighbour(&self, node: NodeId, port: usize) -> NodeId {
        debug_assert!(port < self.dim as usize);
        node ^ (1 << port)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (a ^ b).count_ones()
    }

    fn next_hop(&self, from: NodeId, to: NodeId) -> NodeId {
        if from == to {
            return from;
        }
        let diff = from ^ to;
        from ^ (1 << diff.trailing_zeros())
    }

    fn diameter(&self) -> u32 {
        self.dim
    }

    fn name(&self) -> String {
        format!("hypercube-{}", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_single_bit_flip() {
        let h = Hypercube::new(4);
        assert!(h.are_adjacent(0b0000, 0b0001));
        assert!(h.are_adjacent(0b1010, 0b0010));
        assert!(!h.are_adjacent(0b0000, 0b0011));
        assert!(!h.are_adjacent(5, 5));
    }

    #[test]
    fn hamming_distance() {
        let h = Hypercube::new(5);
        assert_eq!(h.distance(0b00000, 0b11111), 5);
        assert_eq!(h.distance(0b10101, 0b10101), 0);
        assert_eq!(h.diameter(), 5);
    }

    #[test]
    fn ecube_routing_fixes_lowest_bit_first() {
        let h = Hypercube::new(4);
        assert_eq!(h.next_hop(0b0000, 0b1010), 0b0010);
        assert_eq!(h.next_hop(0b0010, 0b1010), 0b1010);
    }

    #[test]
    fn fitting_picks_minimal_dimension() {
        assert_eq!(Hypercube::fitting(2).dim(), 1);
        assert_eq!(Hypercube::fitting(3).dim(), 2);
        assert_eq!(Hypercube::fitting(4).dim(), 2);
        assert_eq!(Hypercube::fitting(5).dim(), 3);
        assert_eq!(Hypercube::fitting(1000).dim(), 10);
        assert_eq!(Hypercube::fitting(1024).dim(), 10);
    }

    #[test]
    fn paper_link_scaling() {
        // "for 2^n nodes, there are nN/2 links and any two nodes are at most
        // n links apart" (§II-A).
        for dim in 1..8 {
            let h = Hypercube::new(dim);
            let n = h.num_nodes();
            assert_eq!(h.num_links(), dim as usize * n / 2);
            assert_eq!(h.diameter(), dim);
        }
    }
}
