//! Property-based tests for topology invariants.

use hyperspace_topology::{
    bfs_distances, routing, Csr, FullyConnected, Grid, Hypercube, NodeId, Ring, Topology, Torus,
};
use proptest::prelude::*;

/// Strategy producing a boxed topology of modest size together with its name.
fn arb_topology() -> impl Strategy<Value = Box<dyn Topology>> {
    prop_oneof![
        (2u32..8, 2u32..8).prop_map(|(w, h)| Box::new(Torus::new_2d(w, h)) as Box<dyn Topology>),
        (2u32..5, 2u32..5, 2u32..5)
            .prop_map(|(x, y, z)| Box::new(Torus::new_3d(x, y, z)) as Box<dyn Topology>),
        (1u32..6).prop_map(|d| Box::new(Hypercube::new(d)) as Box<dyn Topology>),
        (2u32..40).prop_map(|n| Box::new(FullyConnected::new(n)) as Box<dyn Topology>),
        (2u32..7, 2u32..7).prop_map(|(w, h)| Box::new(Grid::new(&[w, h])) as Box<dyn Topology>),
        (3u32..30).prop_map(|n| Box::new(Ring::new(n)) as Box<dyn Topology>),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Links are symmetric and free of self-loops.
    #[test]
    fn neighbour_symmetry(topo in arb_topology()) {
        for a in 0..topo.num_nodes() as NodeId {
            for p in 0..topo.degree(a) {
                let b = topo.neighbour(a, p);
                prop_assert_ne!(a, b);
                prop_assert!(topo.are_adjacent(b, a));
            }
        }
    }

    /// The analytic distance function agrees with BFS on the link graph.
    #[test]
    fn distance_matches_bfs(topo in arb_topology(), seed in 0u32..1000) {
        let n = topo.num_nodes() as u32;
        let from = seed % n;
        let bfs = bfs_distances(topo.as_ref(), from);
        for b in 0..n {
            prop_assert_eq!(topo.distance(from, b), bfs[b as usize]);
        }
    }

    /// next_hop makes strict progress and routes have length == distance.
    #[test]
    fn routing_is_minimal(topo in arb_topology(), s1 in 0u32..10_000, s2 in 0u32..10_000) {
        let n = topo.num_nodes() as u32;
        let (a, b) = (s1 % n, s2 % n);
        let path = routing::route(topo.as_ref(), a, b);
        prop_assert_eq!(path.len() as u32 - 1, topo.distance(a, b));
        for w in path.windows(2) {
            prop_assert!(topo.are_adjacent(w[0], w[1]));
        }
    }

    /// Distance is a metric: symmetric and satisfies the triangle inequality.
    #[test]
    fn distance_is_a_metric(topo in arb_topology(), s in any::<[u32; 3]>()) {
        let n = topo.num_nodes() as u32;
        let (a, b, c) = (s[0] % n, s[1] % n, s[2] % n);
        prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
        prop_assert!(topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c));
        prop_assert_eq!(topo.distance(a, a), 0);
    }

    /// Diameter really is the maximum pairwise distance (exhaustive on small
    /// machines).
    #[test]
    fn diameter_is_max_distance(topo in arb_topology()) {
        let n = topo.num_nodes() as u32;
        if n <= 128 {
            let max = (0..n)
                .flat_map(|a| (0..n).map(move |b| (a, b)))
                .map(|(a, b)| topo.distance(a, b))
                .max()
                .unwrap();
            prop_assert_eq!(max, topo.diameter());
        }
    }

    /// The CSR cache is an exact image of the trait's adjacency structure.
    #[test]
    fn csr_image_is_exact(topo in arb_topology()) {
        let csr = Csr::build(topo.as_ref());
        for node in 0..topo.num_nodes() as NodeId {
            let expected = topo.neighbours(node);
            prop_assert_eq!(csr.neighbours(node), expected.as_slice());
        }
    }

    /// Tori and hypercubes are node-symmetric: every node has equal degree
    /// and an identical sorted multiset of distances to all other nodes.
    #[test]
    fn torus_node_symmetry(w in 2u32..6, h in 2u32..6) {
        let t = Torus::new_2d(w, h);
        let profile = |node: NodeId| {
            let mut d: Vec<u32> =
                (0..t.num_nodes() as NodeId).map(|b| t.distance(node, b)).collect();
            d.sort_unstable();
            d
        };
        let p0 = profile(0);
        for node in 1..t.num_nodes() as NodeId {
            prop_assert_eq!(&profile(node), &p0);
        }
    }
}
