//! Phase-attributed profiling: where a run's wall time actually goes.
//!
//! The barrier-synchronous model makes every step a fixed sequence of
//! phases — message delivery, handler execution, cross-shard exchange,
//! barrier waits — plus the rarer checkpoint-encode and persist/fsync
//! work around it. [`Phase`] names them; [`PhaseProfiler`] accumulates
//! per-shard span statistics for each; [`TraceBuffer`] optionally keeps
//! the most recent individual spans so [`crate::chrome_trace`] can
//! render a per-shard timeline.
//!
//! The profiler obeys the crate's two invariants. It is strictly
//! one-way (values in, nothing out), so profiled runs stay bit-identical
//! to unprofiled ones. And it is cheap: hot-path recording is a shared
//! read-lock plus relaxed atomics, and the engines only *time* phases on
//! sampled steps (see `ObsHandle::phase_sampled`), so even sub-µs steps
//! stay within the overhead budget.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::json::JsonValue;
use crate::metric::SpanStat;

/// A named region of a run's wall time. Every nanosecond the profiler
/// attributes lands in exactly one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Moving messages: routed transit hops, inbox batch pops, and
    /// staged-send delivery (engine phases 1 and 3).
    Delivery,
    /// Running node handlers over the delivered batches (phase 2).
    Handler,
    /// A shard worker blocked at a step barrier.
    BarrierWait,
    /// Cross-shard exchange: absorbing transit/send mail posted by
    /// other shards through the mail grid.
    Exchange,
    /// Encoding a checkpoint's canonical byte body.
    CheckpointEncode,
    /// Writing a durable record (temp file + fsync + rename).
    Fsync,
}

impl Phase {
    /// Number of phases (the size of per-shard accumulator arrays).
    pub const COUNT: usize = 6;

    /// Every phase, in accumulator-index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Delivery,
        Phase::Handler,
        Phase::BarrierWait,
        Phase::Exchange,
        Phase::CheckpointEncode,
        Phase::Fsync,
    ];

    /// The phase's slot in per-shard accumulator arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Delivery => 0,
            Phase::Handler => 1,
            Phase::BarrierWait => 2,
            Phase::Exchange => 3,
            Phase::CheckpointEncode => 4,
            Phase::Fsync => 5,
        }
    }

    /// Stable lower-snake name (the JSON/Prometheus encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Delivery => "delivery",
            Phase::Handler => "handler",
            Phase::BarrierWait => "barrier_wait",
            Phase::Exchange => "exchange",
            Phase::CheckpointEncode => "checkpoint_encode",
            Phase::Fsync => "fsync",
        }
    }
}

/// One shard's phase accumulators plus its most recently reported
/// active-set load (the elastic scheduler's imbalance input).
#[derive(Default)]
pub struct ShardPhases {
    stats: [SpanStat; Phase::COUNT],
    active: AtomicU64,
}

impl ShardPhases {
    /// The accumulated statistic for `phase` on this shard.
    pub fn stat(&self, phase: Phase) -> &SpanStat {
        &self.stats[phase.index()]
    }

    /// The latest reported active-set size (0 until reported).
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }
}

/// Sanity cap on shard indices: worker/shard ids are small in practice;
/// anything larger is clamped into the last slot rather than allocating
/// an absurd accumulator table.
const MAX_SHARDS: usize = 1024;

/// Per-shard, per-phase span accounting. Shard slots are created lazily
/// on first use (the profiler does not know the shard count up front);
/// recording into an existing slot takes only a shared read-lock and
/// relaxed atomics, so shard worker threads never serialise on it.
#[derive(Default)]
pub struct PhaseProfiler {
    shards: RwLock<Vec<Arc<ShardPhases>>>,
}

impl PhaseProfiler {
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    fn slot(&self, shard: usize) -> Arc<ShardPhases> {
        let shard = shard.min(MAX_SHARDS - 1);
        {
            let shards = self.shards.read().expect("profiler poisoned");
            if let Some(slot) = shards.get(shard) {
                return Arc::clone(slot);
            }
        }
        let mut shards = self.shards.write().expect("profiler poisoned");
        while shards.len() <= shard {
            shards.push(Arc::new(ShardPhases::default()));
        }
        Arc::clone(&shards[shard])
    }

    /// Records one completed span of `nanos` for `phase` on `shard`.
    #[inline]
    pub fn record(&self, shard: usize, phase: Phase, nanos: u64) {
        self.slot(shard).stats[phase.index()].record(nanos);
    }

    /// Records `shard`'s current active-set size (its step load).
    #[inline]
    pub fn set_active(&self, shard: usize, nodes: u64) {
        self.slot(shard).active.store(nodes, Ordering::Relaxed);
    }

    /// Shard slots created so far.
    pub fn shard_count(&self) -> usize {
        self.shards.read().expect("profiler poisoned").len()
    }

    /// The accumulators for `shard`, if it ever recorded.
    pub fn shard(&self, shard: usize) -> Option<Arc<ShardPhases>> {
        self.shards
            .read()
            .expect("profiler poisoned")
            .get(shard)
            .cloned()
    }

    /// All shard slots, in shard order.
    pub fn shards(&self) -> Vec<Arc<ShardPhases>> {
        self.shards.read().expect("profiler poisoned").clone()
    }

    /// `(count, total_ns, max_ns)` for `phase`, aggregated over shards.
    pub fn phase_total(&self, phase: Phase) -> (u64, u64, u64) {
        let mut count = 0u64;
        let mut total = 0u64;
        let mut max = 0u64;
        for slot in self.shards.read().expect("profiler poisoned").iter() {
            let stat = &slot.stats[phase.index()];
            count = count.saturating_add(stat.count());
            total = total.saturating_add(stat.total_ns());
            max = max.max(stat.max_ns());
        }
        (count, total, max)
    }

    /// `(max, mean)` of per-shard active-set loads, over shards that
    /// have reported; `None` before any report.
    pub fn load(&self) -> Option<(f64, f64)> {
        let shards = self.shards.read().expect("profiler poisoned");
        if shards.is_empty() {
            return None;
        }
        let loads: Vec<u64> = shards.iter().map(|s| s.active()).collect();
        let max = *loads.iter().max().expect("non-empty") as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        Some((max, mean))
    }

    /// Per-phase aggregate `{count, total_ns, max_ns}` over all shards,
    /// with every phase present (stable snapshot shape).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(Phase::ALL.map(|phase| {
            let (count, total, max) = self.phase_total(phase);
            (
                phase.as_str(),
                JsonValue::object([
                    ("count", JsonValue::UInt(count)),
                    ("total_ns", JsonValue::UInt(total)),
                    ("max_ns", JsonValue::UInt(max)),
                ]),
            )
        }))
    }
}

/// One individual timed span, kept by a [`TraceBuffer`] for timeline
/// export. `end_micros` is relative to the buffer's creation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSample {
    pub shard: usize,
    pub phase: Phase,
    pub end_micros: u64,
    pub dur_nanos: u64,
}

/// A fixed-capacity ring of recent [`PhaseSample`]s — the raw material
/// of a Chrome-trace timeline. Opt-in (a probe records aggregates
/// always, individual spans only when a buffer is attached); the mutex
/// is only touched on sampled steps.
pub struct TraceBuffer {
    ring: Mutex<VecDeque<PhaseSample>>,
    capacity: usize,
    epoch: Instant,
}

impl TraceBuffer {
    /// A buffer keeping the most recent `capacity` spans.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Stamps and records one completed span, evicting the oldest at
    /// capacity.
    pub fn record(&self, shard: usize, phase: Phase, dur_nanos: u64) {
        let end_micros = crate::saturating_micros(self.epoch.elapsed());
        let mut ring = self.ring.lock().expect("trace buffer poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(PhaseSample {
            shard,
            phase,
            end_micros,
            dur_nanos,
        });
    }

    /// A copy of the buffered spans, oldest first.
    pub fn samples(&self) -> Vec<PhaseSample> {
        self.ring
            .lock()
            .expect("trace buffer poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_index_round_trips() {
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }

    #[test]
    fn profiler_accumulates_per_shard() {
        let p = PhaseProfiler::new();
        p.record(0, Phase::Handler, 100);
        p.record(2, Phase::Handler, 300);
        p.record(2, Phase::Delivery, 50);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.shard(0).unwrap().stat(Phase::Handler).total_ns(), 100);
        assert_eq!(p.shard(2).unwrap().stat(Phase::Handler).total_ns(), 300);
        assert_eq!(p.phase_total(Phase::Handler), (2, 400, 300));
        assert_eq!(p.phase_total(Phase::Fsync), (0, 0, 0));
    }

    #[test]
    fn load_reports_max_and_mean() {
        let p = PhaseProfiler::new();
        assert_eq!(p.load(), None);
        p.set_active(0, 10);
        p.set_active(1, 30);
        let (max, mean) = p.load().unwrap();
        assert_eq!(max, 30.0);
        assert_eq!(mean, 20.0);
    }

    /// The u128→u64 truncation audit's accumulator half: a saturated
    /// duration flows through `record` un-mangled, and aggregation
    /// saturates instead of wrapping.
    #[test]
    fn saturated_durations_survive_the_accumulators() {
        let ns = crate::saturating_nanos(std::time::Duration::MAX);
        assert_eq!(ns, u64::MAX);
        let p = PhaseProfiler::new();
        p.record(0, Phase::Fsync, ns);
        p.record(1, Phase::Fsync, ns);
        let (count, total, max) = p.phase_total(Phase::Fsync);
        assert_eq!(count, 2);
        assert_eq!(total, u64::MAX, "aggregate saturates, never wraps");
        assert_eq!(max, u64::MAX);
    }

    #[test]
    fn absurd_shard_ids_clamp_instead_of_allocating() {
        let p = PhaseProfiler::new();
        p.record(usize::MAX, Phase::Handler, 1);
        assert_eq!(p.shard_count(), MAX_SHARDS);
    }

    #[test]
    fn trace_buffer_keeps_the_tail() {
        let buf = TraceBuffer::new(2);
        buf.record(0, Phase::Delivery, 10);
        buf.record(0, Phase::Handler, 20);
        buf.record(1, Phase::Handler, 30);
        let samples = buf.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].phase, Phase::Handler);
        assert_eq!(samples[1].shard, 1);
        assert_eq!(TraceBuffer::new(0).capacity(), 1);
    }

    #[test]
    fn json_has_every_phase() {
        let p = PhaseProfiler::new();
        p.record(0, Phase::Handler, 5);
        let json = p.to_json().to_string();
        for phase in Phase::ALL {
            assert!(json.contains(phase.as_str()), "{json}");
        }
    }
}
