//! Time-series telemetry: fixed-capacity ring-buffer series, EWMA rate
//! estimators, and the [`Signals`] vector the elastic scheduler (and
//! any dashboard) subscribes to.
//!
//! These are plain data structures — no interior locking — because they
//! live behind the embedder's own sampling cadence (e.g. the service
//! observer's history mutex). Solver threads never touch them.

use std::collections::VecDeque;

use crate::json::JsonValue;

/// A fixed-capacity ring of `f64` samples: the last `capacity` values
/// of one telemetry signal, oldest first. Pushing at capacity evicts
/// the oldest sample; `pushed` keeps counting.
#[derive(Clone, Debug)]
pub struct RingSeries {
    data: VecDeque<f64>,
    capacity: usize,
    pushed: u64,
}

impl RingSeries {
    /// A series keeping the most recent `capacity` samples (min 1).
    pub fn new(capacity: usize) -> RingSeries {
        let capacity = capacity.max(1);
        RingSeries {
            data: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest at capacity.
    pub fn push(&mut self, value: f64) {
        if self.data.len() == self.capacity {
            self.data.pop_front();
        }
        self.data.push_back(value);
        self.pushed += 1;
    }

    /// Samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples ever pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<f64> {
        self.data.back().copied()
    }

    /// The held samples as a contiguous vector, oldest first (the shape
    /// chart renderers want).
    pub fn values(&self) -> Vec<f64> {
        self.data.iter().copied().collect()
    }

    /// Mean of the held samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Maximum of the held samples (`0.0` when empty).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

/// An exponentially-weighted moving-average rate estimator over a
/// monotone total. Feed it `(total, dt)` observations on any cadence;
/// it differentiates (`Δtotal / dt`) and smooths with factor `alpha`
/// (1.0 = instantaneous, small = heavily smoothed). Clock-free: the
/// caller supplies elapsed time, so the estimator is deterministic
/// under test.
#[derive(Clone, Debug)]
pub struct EwmaRate {
    alpha: f64,
    last_total: Option<f64>,
    rate: Option<f64>,
}

impl EwmaRate {
    /// An estimator with smoothing factor `alpha`, clamped to (0, 1].
    pub fn new(alpha: f64) -> EwmaRate {
        EwmaRate {
            alpha: if alpha > 0.0 { alpha.min(1.0) } else { 1.0 },
            last_total: None,
            rate: None,
        }
    }

    /// Observes the monotone total after `dt_secs` more seconds and
    /// returns the updated smoothed rate. Non-positive `dt_secs` and
    /// backward totals (a counter reset) leave the rate unchanged.
    pub fn observe(&mut self, total: f64, dt_secs: f64) -> f64 {
        if let Some(last) = self.last_total {
            if dt_secs > 0.0 && total >= last {
                let instantaneous = (total - last) / dt_secs;
                self.rate = Some(match self.rate {
                    Some(rate) => rate + self.alpha * (instantaneous - rate),
                    None => instantaneous,
                });
            }
        }
        self.last_total = Some(total);
        self.rate()
    }

    /// The current smoothed rate (`0.0` before two observations).
    pub fn rate(&self) -> f64 {
        self.rate.unwrap_or(0.0)
    }
}

/// The live feedback-signal vector for scheduling decisions — exactly
/// what the ROADMAP's elastic grow/shrink policy consumes, exposed via
/// `ServiceObserver::signals()`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Signals {
    /// Aggregate engine steps per second (EWMA-smoothed).
    pub steps_per_sec: f64,
    /// Jobs waiting in the service queue right now.
    pub queue_depth: f64,
    /// Incumbent improvements per second across all jobs
    /// (EWMA-smoothed) — the B&B progress signal.
    pub incumbent_rate: f64,
    /// Open recursion/B&B records across all jobs (frontier size).
    pub frontier_size: f64,
    /// Largest per-shard active-set load reported by any running job.
    pub shard_load_max: f64,
    /// Mean per-shard active-set load across reporting shards.
    pub shard_load_mean: f64,
    /// Load imbalance `max / mean` (1.0 = perfectly balanced, 0.0 =
    /// no shard has reported yet).
    pub shard_imbalance: f64,
}

impl Signals {
    /// The vector as a JSON object (stable key order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("steps_per_sec", JsonValue::Float(self.steps_per_sec)),
            ("queue_depth", JsonValue::Float(self.queue_depth)),
            ("incumbent_rate", JsonValue::Float(self.incumbent_rate)),
            ("frontier_size", JsonValue::Float(self.frontier_size)),
            ("shard_load_max", JsonValue::Float(self.shard_load_max)),
            ("shard_load_mean", JsonValue::Float(self.shard_load_mean)),
            ("shard_imbalance", JsonValue::Float(self.shard_imbalance)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut s = RingSeries::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.values(), vec![2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.pushed(), 4);
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn ring_capacity_zero_clamps_to_one() {
        let mut s = RingSeries::new(0);
        s.push(1.0);
        s.push(2.0);
        assert_eq!(s.values(), vec![2.0]);
        assert_eq!(s.capacity(), 1);
    }

    #[test]
    fn ewma_smooths_toward_the_instantaneous_rate() {
        let mut e = EwmaRate::new(0.5);
        assert_eq!(e.observe(0.0, 1.0), 0.0); // first sample only anchors
        assert_eq!(e.observe(100.0, 1.0), 100.0); // first rate is exact
        let r = e.observe(100.0, 1.0); // rate dropped to 0
        assert_eq!(r, 50.0);
        let r = e.observe(100.0, 1.0);
        assert_eq!(r, 25.0);
    }

    #[test]
    fn ewma_ignores_resets_and_zero_dt() {
        let mut e = EwmaRate::new(0.5);
        e.observe(100.0, 1.0);
        e.observe(200.0, 1.0);
        let before = e.rate();
        assert_eq!(e.observe(10.0, 1.0), before, "counter reset ignored");
        assert_eq!(e.observe(10.0, 0.0), before, "zero dt ignored");
        assert!(EwmaRate::new(-1.0).alpha == 1.0);
    }

    #[test]
    fn signals_json_shape() {
        let json = Signals::default().to_json().to_string();
        for key in [
            "steps_per_sec",
            "queue_depth",
            "incumbent_rate",
            "frontier_size",
            "shard_load_max",
            "shard_load_mean",
            "shard_imbalance",
        ] {
            assert!(json.contains(key), "{json}");
        }
    }
}
