//! The flight recorder: a fixed-capacity ring of recent structured
//! events. Lifecycle-rate only (submissions, slice yields, preemptions,
//! crashes) — never per-step — so one short mutex suffices.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::JsonValue;

/// What a flight-recorder event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A job entered the service queue.
    Submitted,
    /// A worker picked a job up and started (or resumed) executing it.
    Started,
    /// A sliced job yielded at a checkpoint barrier.
    SliceYielded,
    /// A job was preempted by higher-priority work.
    Preempted,
    /// A job was suspended on request.
    Suspended,
    /// A crashed job was rebuilt and requeued for deterministic replay.
    Restarted,
    /// A job finished with a result.
    Completed,
    /// A job was cancelled.
    Cancelled,
    /// A job exceeded its deadline.
    TimedOut,
    /// A job's handler panicked.
    Crashed,
    /// A checkpoint was taken.
    Checkpoint,
    /// A portfolio sync epoch completed.
    Epoch,
    /// A job's durable record was written to the on-disk store.
    Persisted,
    /// A job was recovered from the on-disk store after a restart.
    Recovered,
}

impl EventKind {
    /// Stable lower-snake name (the JSON encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::Started => "started",
            EventKind::SliceYielded => "slice_yielded",
            EventKind::Preempted => "preempted",
            EventKind::Suspended => "suspended",
            EventKind::Restarted => "restarted",
            EventKind::Completed => "completed",
            EventKind::Cancelled => "cancelled",
            EventKind::TimedOut => "timed_out",
            EventKind::Crashed => "crashed",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Epoch => "epoch",
            EventKind::Persisted => "persisted",
            EventKind::Recovered => "recovered",
        }
    }
}

/// One structured flight-recorder entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number assigned by the recorder (0 until
    /// recorded).
    pub seq: u64,
    /// Microseconds since the recorder was created (0 until recorded).
    pub micros: u64,
    /// The job the event belongs to, if any.
    pub job: Option<u64>,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific magnitude (steps at a yield, payload bytes of a
    /// checkpoint, epoch index, ...).
    pub value: i64,
    /// Optional human-readable detail (panic message, job label).
    pub detail: Option<String>,
}

impl Event {
    /// A bare event; the recorder stamps `seq` and `micros`.
    pub fn new(kind: EventKind, job: Option<u64>, value: i64) -> Event {
        Event {
            seq: 0,
            micros: 0,
            job,
            kind,
            value,
            detail: None,
        }
    }

    /// Attaches a detail string.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Event {
        self.detail = Some(detail.into());
        self
    }

    /// The event as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("seq".to_string(), JsonValue::UInt(self.seq)),
            ("micros".to_string(), JsonValue::UInt(self.micros)),
            ("kind".to_string(), JsonValue::str(self.kind.as_str())),
            ("value".to_string(), JsonValue::Int(self.value)),
        ];
        if let Some(job) = self.job {
            fields.insert(2, ("job".to_string(), JsonValue::UInt(job)));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail".to_string(), JsonValue::str(detail)));
        }
        JsonValue::Object(fields)
    }
}

struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
}

/// Fixed-capacity ring buffer of recent [`Event`]s. Old entries fall
/// off the front; the tail is what a crash dump preserves.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 0,
            }),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Stamps and records an event, evicting the oldest on overflow.
    pub fn record(&self, mut event: Event) {
        event.micros = crate::saturating_micros(self.epoch.elapsed());
        let mut ring = self.ring.lock().expect("recorder poisoned");
        event.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(event);
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("recorder poisoned").next_seq
    }

    /// A copy of the ring's current contents, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let ring = self.ring.lock().expect("recorder poisoned");
        ring.events.iter().cloned().collect()
    }

    /// The most recent `n` events, oldest first.
    pub fn last_n(&self, n: usize) -> Vec<Event> {
        let ring = self.ring.lock().expect("recorder poisoned");
        let skip = ring.events.len().saturating_sub(n);
        ring.events.iter().skip(skip).cloned().collect()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(Event::new(EventKind::Submitted, Some(i), i as i64));
        }
        let tail = rec.snapshot();
        assert_eq!(tail.len(), 3);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(rec.recorded(), 5);
        let last = rec.last_n(2);
        assert_eq!(last.len(), 2);
        assert_eq!(last[1].job, Some(4));
    }

    #[test]
    fn event_json_shape() {
        let rec = FlightRecorder::new(4);
        rec.record(Event::new(EventKind::Crashed, Some(9), 3).with_detail("boom"));
        let json = rec.snapshot()[0].to_json().to_string();
        assert!(json.contains("\"kind\":\"crashed\""), "{json}");
        assert!(json.contains("\"job\":9"), "{json}");
        assert!(json.contains("\"detail\":\"boom\""), "{json}");
    }
}
