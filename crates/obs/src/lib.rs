//! Live observability core (dependency-free).
//!
//! The paper's evaluation (§V-C) is reconstructed from post-hoc logs;
//! this crate is the *live* counterpart: lock-light counters, gauges
//! and span timers that every layer of the stack can feed while a run
//! is in flight, plus a fixed-capacity ring-buffer event recorder (the
//! "flight recorder") whose tail survives a crash.
//!
//! Design invariant — **observation never perturbs computation**: the
//! [`Observer`] trait's methods take values by copy and return nothing,
//! so an observer has no channel through which to feed data back into
//! the deterministic step loop. The bit-identity suites run with
//! observation on and off and assert identical reports, metrics,
//! traces and checkpoint bytes.
//!
//! The second invariant is **bounded overhead**: every hook sits behind
//! an [`ObsHandle`] that is a single `Option` branch when disabled (no
//! clock reads, no allocation), and the instrumented hot paths update
//! relaxed atomics only. `bench/bin/obs_overhead.rs` measures the
//! instrumented-vs-bare steps/sec ratio and asserts the budget.

mod export;
mod json;
mod metric;
mod phase;
mod probe;
mod recorder;
mod registry;
mod series;

pub use export::{chrome_trace, prometheus};
pub use json::{pretty, JsonValue};
pub use metric::{Counter, Gauge, SpanStat, SpanTimer};
pub use phase::{Phase, PhaseProfiler, PhaseSample, ShardPhases, TraceBuffer};
pub use probe::JobProbe;
pub use recorder::{Event, EventKind, FlightRecorder};
pub use registry::{CrashDump, Registry, CRASH_DUMP_TAIL};
pub use series::{EwmaRate, RingSeries, Signals};

use std::sync::Arc;
use std::time::Duration;

/// Saturating `Duration` → nanoseconds conversion. `as_nanos()` returns
/// a `u128`; a bare `as u64` cast silently truncates durations beyond
/// ~584 years (the bug class PR 5 fixed in the service stats). Telemetry
/// sites clamp instead: an impossible duration reads as `u64::MAX`, not
/// as a small plausible-looking number.
#[inline]
pub fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Saturating `Duration` → microseconds conversion (see
/// [`saturating_nanos`]).
#[inline]
pub fn saturating_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Passive telemetry sink threaded through the stack's layers. Every
/// method has a no-op default, takes plain values and returns nothing:
/// an observer can watch a deterministic run but never steer it.
///
/// Implementations must be cheap and non-blocking — hooks fire from the
/// engine's step loop and from shard worker threads. The bundled
/// [`JobProbe`]/[`Registry`] implementations use relaxed atomics on the
/// per-step paths and take short mutexes only for lifecycle-rate
/// events.
pub trait Observer: Send + Sync {
    /// One engine step completed: messages delivered during the step
    /// and messages still queued (inboxes + transit) after it.
    fn on_step(&self, step: u64, delivered: u64, queued: u64) {
        let _ = (step, delivered, queued);
    }

    /// A shard worker spent `nanos` waiting at a step barrier.
    fn on_barrier_wait(&self, shard: usize, nanos: u64) {
        let _ = (shard, nanos);
    }

    /// Live recursion/B&B frontier progress at a slice barrier.
    fn on_progress(&self, steps: u64, open_records: u64, incumbent: Option<i64>) {
        let _ = (steps, open_records, incumbent);
    }

    /// One portfolio member finished a sync epoch; `clauses` and
    /// `incumbents` count what the knowledge bus carried this epoch.
    fn on_epoch(&self, epoch: u64, member: usize, steps: u64, clauses: u64, incumbents: u64) {
        let _ = (epoch, member, steps, clauses, incumbents);
    }

    /// A checkpoint was encoded (`bytes` of payload in `nanos`).
    fn on_checkpoint(&self, bytes: u64, nanos: u64) {
        let _ = (bytes, nanos);
    }

    /// A checkpoint was decoded/restored (`bytes` of payload in `nanos`).
    fn on_restore(&self, bytes: u64, nanos: u64) {
        let _ = (bytes, nanos);
    }

    /// A lifecycle-rate structured event (job submitted, slice yielded,
    /// preemption, crash, ...). Fires far below step rate.
    fn on_event(&self, event: &Event) {
        let _ = event;
    }

    /// `shard` spent `nanos` of wall time in `phase`. Step-loop phases
    /// (delivery/handler/exchange) only fire on sampled steps (see
    /// [`ObsHandle::phase_sampled`]); checkpoint-encode and fsync fire
    /// on every occurrence.
    fn on_phase(&self, shard: usize, phase: Phase, nanos: u64) {
        let _ = (shard, phase, nanos);
    }

    /// `shard`'s active-set size after a sampled step — the per-shard
    /// load-imbalance signal.
    fn on_shard_active(&self, shard: usize, nodes: u64) {
        let _ = (shard, nodes);
    }
}

/// How often the engines *time* step-loop phases when an observer is
/// attached: every `DEFAULT_PHASE_PERIOD`-th step. Sub-microsecond
/// sparse steps cannot afford clock reads on every step; sampling every
/// power-of-two-th step keeps attribution statistically faithful (every
/// phase of a sampled step is timed together) at 1/16th the clock cost.
pub const DEFAULT_PHASE_PERIOD: u64 = 16;

/// A cloneable on/off switch around an observer, designed to live
/// inside `Clone + Debug` config structs. Disabled (the default) every
/// hook is one `Option` branch — no clock reads, no allocation — which
/// is what keeps un-observed runs at bare-engine speed.
#[derive(Clone)]
pub struct ObsHandle {
    observer: Option<Arc<dyn Observer>>,
    /// Power-of-two-minus-one mask: steps with `step & mask == 0` get
    /// their phases timed.
    phase_mask: u64,
}

impl Default for ObsHandle {
    fn default() -> ObsHandle {
        ObsHandle::off()
    }
}

impl ObsHandle {
    /// The disabled handle (all hooks are no-ops).
    pub fn off() -> ObsHandle {
        ObsHandle {
            observer: None,
            phase_mask: DEFAULT_PHASE_PERIOD - 1,
        }
    }

    /// Wraps an observer.
    pub fn new(observer: Arc<dyn Observer>) -> ObsHandle {
        ObsHandle {
            observer: Some(observer),
            phase_mask: DEFAULT_PHASE_PERIOD - 1,
        }
    }

    /// Sets the phase-sampling period (rounded up to a power of two,
    /// min 1 = every step). Period 1 times every step — right for
    /// coarse-step workloads; the default suits sub-µs sparse steps.
    pub fn with_phase_period(mut self, period: u64) -> ObsHandle {
        self.phase_mask = period.clamp(1, 1 << 62).next_power_of_two() - 1;
        self
    }

    /// The effective phase-sampling period.
    pub fn phase_period(&self) -> u64 {
        self.phase_mask + 1
    }

    /// Whether an observer is attached. Instrumentation sites use this
    /// to skip clock reads entirely when disabled.
    pub fn enabled(&self) -> bool {
        self.observer.is_some()
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// Whether `step`'s phases should be timed: an observer is attached
    /// *and* the step lands on the sampling grid. One branch when
    /// disabled.
    #[inline]
    pub fn phase_sampled(&self, step: u64) -> bool {
        self.observer.is_some() && step & self.phase_mask == 0
    }

    /// A lap clock for `step`'s phases on `shard`, or `None` when the
    /// step is unsampled (or observation is off). The engines call
    /// [`PhaseClock::lap`] at each phase boundary; consecutive laps
    /// share clock reads, so a fully-timed step costs phases + 1 reads.
    /// The clock owns its observer handle (cloned only on sampled
    /// steps), so it can live across `&mut self` engine calls.
    #[inline]
    pub fn phase_clock(&self, shard: usize, step: u64) -> Option<PhaseClock> {
        if step & self.phase_mask != 0 {
            return None;
        }
        self.observer.as_ref().map(|o| PhaseClock {
            obs: Arc::clone(o),
            shard,
            last: std::time::Instant::now(),
        })
    }

    /// Times `f` and attributes it to `phase` on `shard` — for
    /// occurrence-rate phases (checkpoint encode, fsync) that are never
    /// sampled away. Runs `f` with no clock reads when disabled.
    #[inline]
    pub fn time_phase<R>(&self, shard: usize, phase: Phase, f: impl FnOnce() -> R) -> R {
        match &self.observer {
            None => f(),
            Some(o) => {
                let start = std::time::Instant::now();
                let out = f();
                o.on_phase(shard, phase, saturating_nanos(start.elapsed()));
                out
            }
        }
    }

    /// See [`Observer::on_step`].
    #[inline]
    pub fn on_step(&self, step: u64, delivered: u64, queued: u64) {
        if let Some(o) = &self.observer {
            o.on_step(step, delivered, queued);
        }
    }

    /// See [`Observer::on_barrier_wait`].
    #[inline]
    pub fn on_barrier_wait(&self, shard: usize, nanos: u64) {
        if let Some(o) = &self.observer {
            o.on_barrier_wait(shard, nanos);
        }
    }

    /// See [`Observer::on_progress`].
    #[inline]
    pub fn on_progress(&self, steps: u64, open_records: u64, incumbent: Option<i64>) {
        if let Some(o) = &self.observer {
            o.on_progress(steps, open_records, incumbent);
        }
    }

    /// See [`Observer::on_epoch`].
    #[inline]
    pub fn on_epoch(&self, epoch: u64, member: usize, steps: u64, clauses: u64, incumbents: u64) {
        if let Some(o) = &self.observer {
            o.on_epoch(epoch, member, steps, clauses, incumbents);
        }
    }

    /// See [`Observer::on_checkpoint`].
    #[inline]
    pub fn on_checkpoint(&self, bytes: u64, nanos: u64) {
        if let Some(o) = &self.observer {
            o.on_checkpoint(bytes, nanos);
        }
    }

    /// See [`Observer::on_restore`].
    #[inline]
    pub fn on_restore(&self, bytes: u64, nanos: u64) {
        if let Some(o) = &self.observer {
            o.on_restore(bytes, nanos);
        }
    }

    /// See [`Observer::on_event`].
    #[inline]
    pub fn on_event(&self, event: &Event) {
        if let Some(o) = &self.observer {
            o.on_event(event);
        }
    }

    /// See [`Observer::on_phase`].
    #[inline]
    pub fn on_phase(&self, shard: usize, phase: Phase, nanos: u64) {
        if let Some(o) = &self.observer {
            o.on_phase(shard, phase, nanos);
        }
    }

    /// See [`Observer::on_shard_active`].
    #[inline]
    pub fn on_shard_active(&self, shard: usize, nodes: u64) {
        if let Some(o) = &self.observer {
            o.on_shard_active(shard, nodes);
        }
    }

    /// Times `f` and reports the wall-clock wait to
    /// [`Observer::on_barrier_wait`]; when disabled, runs `f` with no
    /// clock reads at all.
    #[inline]
    pub fn time_barrier<R>(&self, shard: usize, f: impl FnOnce() -> R) -> R {
        match &self.observer {
            None => f(),
            Some(o) => {
                let start = std::time::Instant::now();
                let out = f();
                o.on_barrier_wait(shard, saturating_nanos(start.elapsed()));
                out
            }
        }
    }
}

/// A lap timer over one sampled step's phase sequence. Each
/// [`PhaseClock::lap`] attributes the wall time since the previous lap
/// (or construction) to the given phase, so consecutive phases share
/// clock reads: a step timed into `p` phases costs `p + 1` reads total.
pub struct PhaseClock {
    obs: Arc<dyn Observer>,
    shard: usize,
    last: std::time::Instant,
}

impl PhaseClock {
    /// Closes the current phase span and opens the next.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        let now = std::time::Instant::now();
        self.obs.on_phase(
            self.shard,
            phase,
            saturating_nanos(now.saturating_duration_since(self.last)),
        );
        self.last = now;
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.observer.is_some() {
            "ObsHandle(on)"
        } else {
            "ObsHandle(off)"
        })
    }
}

impl From<Arc<dyn Observer>> for ObsHandle {
    fn from(observer: Arc<dyn Observer>) -> ObsHandle {
        ObsHandle::new(observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingObserver {
        steps: AtomicU64,
        barriers: AtomicU64,
        events: AtomicU64,
    }

    impl Observer for CountingObserver {
        fn on_step(&self, _step: u64, _delivered: u64, _queued: u64) {
            self.steps.fetch_add(1, Ordering::Relaxed);
        }
        fn on_barrier_wait(&self, _shard: usize, _nanos: u64) {
            self.barriers.fetch_add(1, Ordering::Relaxed);
        }
        fn on_event(&self, _event: &Event) {
            self.events.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = ObsHandle::default();
        assert!(!h.enabled());
        h.on_step(1, 2, 3);
        h.on_progress(1, 2, Some(3));
        assert_eq!(h.time_barrier(0, || 42), 42);
        assert_eq!(format!("{h:?}"), "ObsHandle(off)");
    }

    #[test]
    fn enabled_handle_forwards_every_hook() {
        let obs = Arc::new(CountingObserver::default());
        let h = ObsHandle::new(obs.clone() as Arc<dyn Observer>);
        assert!(h.enabled());
        h.on_step(1, 0, 0);
        h.on_step(2, 0, 0);
        assert_eq!(h.time_barrier(3, || "x"), "x");
        h.on_event(&Event::new(EventKind::Submitted, Some(7), 0));
        assert_eq!(obs.steps.load(Ordering::Relaxed), 2);
        assert_eq!(obs.barriers.load(Ordering::Relaxed), 1);
        assert_eq!(obs.events.load(Ordering::Relaxed), 1);
        assert_eq!(format!("{h:?}"), "ObsHandle(on)");
    }

    #[test]
    fn clones_share_the_observer() {
        let obs = Arc::new(CountingObserver::default());
        let h = ObsHandle::new(obs.clone() as Arc<dyn Observer>);
        let h2 = h.clone();
        h.on_step(1, 0, 0);
        h2.on_step(2, 0, 0);
        assert_eq!(obs.steps.load(Ordering::Relaxed), 2);
    }

    #[derive(Default)]
    struct PhaseCounter {
        phases: AtomicU64,
        nanos: AtomicU64,
    }

    impl Observer for PhaseCounter {
        fn on_phase(&self, _shard: usize, _phase: Phase, nanos: u64) {
            self.phases.fetch_add(1, Ordering::Relaxed);
            self.nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    #[test]
    fn phase_sampling_follows_the_mask() {
        let h = ObsHandle::off();
        assert!(!h.phase_sampled(0), "disabled handle never samples");
        let obs = Arc::new(PhaseCounter::default());
        let h = ObsHandle::new(obs.clone() as Arc<dyn Observer>);
        assert_eq!(h.phase_period(), DEFAULT_PHASE_PERIOD);
        assert!(h.phase_sampled(0));
        assert!(!h.phase_sampled(1));
        assert!(h.phase_sampled(DEFAULT_PHASE_PERIOD));
        let every = h.clone().with_phase_period(1);
        assert!(every.phase_sampled(7));
        let rounded = h.clone().with_phase_period(5);
        assert_eq!(rounded.phase_period(), 8);
        assert!(h.phase_clock(0, 1).is_none());
        let mut clock = h.phase_clock(0, 16).expect("sampled step");
        clock.lap(Phase::Delivery);
        clock.lap(Phase::Handler);
        assert_eq!(obs.phases.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn time_phase_reports_only_when_enabled() {
        assert_eq!(ObsHandle::off().time_phase(0, Phase::Fsync, || 9), 9);
        let obs = Arc::new(PhaseCounter::default());
        let h = ObsHandle::new(obs.clone() as Arc<dyn Observer>);
        assert_eq!(h.time_phase(0, Phase::Fsync, || "io"), "io");
        assert_eq!(obs.phases.load(Ordering::Relaxed), 1);
    }
}
