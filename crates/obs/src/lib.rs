//! Live observability core (dependency-free).
//!
//! The paper's evaluation (§V-C) is reconstructed from post-hoc logs;
//! this crate is the *live* counterpart: lock-light counters, gauges
//! and span timers that every layer of the stack can feed while a run
//! is in flight, plus a fixed-capacity ring-buffer event recorder (the
//! "flight recorder") whose tail survives a crash.
//!
//! Design invariant — **observation never perturbs computation**: the
//! [`Observer`] trait's methods take values by copy and return nothing,
//! so an observer has no channel through which to feed data back into
//! the deterministic step loop. The bit-identity suites run with
//! observation on and off and assert identical reports, metrics,
//! traces and checkpoint bytes.
//!
//! The second invariant is **bounded overhead**: every hook sits behind
//! an [`ObsHandle`] that is a single `Option` branch when disabled (no
//! clock reads, no allocation), and the instrumented hot paths update
//! relaxed atomics only. `bench/bin/obs_overhead.rs` measures the
//! instrumented-vs-bare steps/sec ratio and asserts the budget.

mod json;
mod metric;
mod probe;
mod recorder;
mod registry;

pub use json::{pretty, JsonValue};
pub use metric::{Counter, Gauge, SpanStat, SpanTimer};
pub use probe::JobProbe;
pub use recorder::{Event, EventKind, FlightRecorder};
pub use registry::{CrashDump, Registry, CRASH_DUMP_TAIL};

use std::sync::Arc;
use std::time::Duration;

/// Saturating `Duration` → nanoseconds conversion. `as_nanos()` returns
/// a `u128`; a bare `as u64` cast silently truncates durations beyond
/// ~584 years (the bug class PR 5 fixed in the service stats). Telemetry
/// sites clamp instead: an impossible duration reads as `u64::MAX`, not
/// as a small plausible-looking number.
#[inline]
pub fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Saturating `Duration` → microseconds conversion (see
/// [`saturating_nanos`]).
#[inline]
pub fn saturating_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Passive telemetry sink threaded through the stack's layers. Every
/// method has a no-op default, takes plain values and returns nothing:
/// an observer can watch a deterministic run but never steer it.
///
/// Implementations must be cheap and non-blocking — hooks fire from the
/// engine's step loop and from shard worker threads. The bundled
/// [`JobProbe`]/[`Registry`] implementations use relaxed atomics on the
/// per-step paths and take short mutexes only for lifecycle-rate
/// events.
pub trait Observer: Send + Sync {
    /// One engine step completed: messages delivered during the step
    /// and messages still queued (inboxes + transit) after it.
    fn on_step(&self, step: u64, delivered: u64, queued: u64) {
        let _ = (step, delivered, queued);
    }

    /// A shard worker spent `nanos` waiting at a step barrier.
    fn on_barrier_wait(&self, shard: usize, nanos: u64) {
        let _ = (shard, nanos);
    }

    /// Live recursion/B&B frontier progress at a slice barrier.
    fn on_progress(&self, steps: u64, open_records: u64, incumbent: Option<i64>) {
        let _ = (steps, open_records, incumbent);
    }

    /// One portfolio member finished a sync epoch; `clauses` and
    /// `incumbents` count what the knowledge bus carried this epoch.
    fn on_epoch(&self, epoch: u64, member: usize, steps: u64, clauses: u64, incumbents: u64) {
        let _ = (epoch, member, steps, clauses, incumbents);
    }

    /// A checkpoint was encoded (`bytes` of payload in `nanos`).
    fn on_checkpoint(&self, bytes: u64, nanos: u64) {
        let _ = (bytes, nanos);
    }

    /// A checkpoint was decoded/restored (`bytes` of payload in `nanos`).
    fn on_restore(&self, bytes: u64, nanos: u64) {
        let _ = (bytes, nanos);
    }

    /// A lifecycle-rate structured event (job submitted, slice yielded,
    /// preemption, crash, ...). Fires far below step rate.
    fn on_event(&self, event: &Event) {
        let _ = event;
    }
}

/// A cloneable on/off switch around an observer, designed to live
/// inside `Clone + Debug` config structs. Disabled (the default) every
/// hook is one `Option` branch — no clock reads, no allocation — which
/// is what keeps un-observed runs at bare-engine speed.
#[derive(Clone, Default)]
pub struct ObsHandle(Option<Arc<dyn Observer>>);

impl ObsHandle {
    /// The disabled handle (all hooks are no-ops).
    pub fn off() -> ObsHandle {
        ObsHandle(None)
    }

    /// Wraps an observer.
    pub fn new(observer: Arc<dyn Observer>) -> ObsHandle {
        ObsHandle(Some(observer))
    }

    /// Whether an observer is attached. Instrumentation sites use this
    /// to skip clock reads entirely when disabled.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.0.as_ref()
    }

    /// See [`Observer::on_step`].
    #[inline]
    pub fn on_step(&self, step: u64, delivered: u64, queued: u64) {
        if let Some(o) = &self.0 {
            o.on_step(step, delivered, queued);
        }
    }

    /// See [`Observer::on_barrier_wait`].
    #[inline]
    pub fn on_barrier_wait(&self, shard: usize, nanos: u64) {
        if let Some(o) = &self.0 {
            o.on_barrier_wait(shard, nanos);
        }
    }

    /// See [`Observer::on_progress`].
    #[inline]
    pub fn on_progress(&self, steps: u64, open_records: u64, incumbent: Option<i64>) {
        if let Some(o) = &self.0 {
            o.on_progress(steps, open_records, incumbent);
        }
    }

    /// See [`Observer::on_epoch`].
    #[inline]
    pub fn on_epoch(&self, epoch: u64, member: usize, steps: u64, clauses: u64, incumbents: u64) {
        if let Some(o) = &self.0 {
            o.on_epoch(epoch, member, steps, clauses, incumbents);
        }
    }

    /// See [`Observer::on_checkpoint`].
    #[inline]
    pub fn on_checkpoint(&self, bytes: u64, nanos: u64) {
        if let Some(o) = &self.0 {
            o.on_checkpoint(bytes, nanos);
        }
    }

    /// See [`Observer::on_restore`].
    #[inline]
    pub fn on_restore(&self, bytes: u64, nanos: u64) {
        if let Some(o) = &self.0 {
            o.on_restore(bytes, nanos);
        }
    }

    /// See [`Observer::on_event`].
    #[inline]
    pub fn on_event(&self, event: &Event) {
        if let Some(o) = &self.0 {
            o.on_event(event);
        }
    }

    /// Times `f` and reports the wall-clock wait to
    /// [`Observer::on_barrier_wait`]; when disabled, runs `f` with no
    /// clock reads at all.
    #[inline]
    pub fn time_barrier<R>(&self, shard: usize, f: impl FnOnce() -> R) -> R {
        match &self.0 {
            None => f(),
            Some(o) => {
                let start = std::time::Instant::now();
                let out = f();
                o.on_barrier_wait(shard, saturating_nanos(start.elapsed()));
                out
            }
        }
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObsHandle(on)"
        } else {
            "ObsHandle(off)"
        })
    }
}

impl From<Arc<dyn Observer>> for ObsHandle {
    fn from(observer: Arc<dyn Observer>) -> ObsHandle {
        ObsHandle::new(observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingObserver {
        steps: AtomicU64,
        barriers: AtomicU64,
        events: AtomicU64,
    }

    impl Observer for CountingObserver {
        fn on_step(&self, _step: u64, _delivered: u64, _queued: u64) {
            self.steps.fetch_add(1, Ordering::Relaxed);
        }
        fn on_barrier_wait(&self, _shard: usize, _nanos: u64) {
            self.barriers.fetch_add(1, Ordering::Relaxed);
        }
        fn on_event(&self, _event: &Event) {
            self.events.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = ObsHandle::default();
        assert!(!h.enabled());
        h.on_step(1, 2, 3);
        h.on_progress(1, 2, Some(3));
        assert_eq!(h.time_barrier(0, || 42), 42);
        assert_eq!(format!("{h:?}"), "ObsHandle(off)");
    }

    #[test]
    fn enabled_handle_forwards_every_hook() {
        let obs = Arc::new(CountingObserver::default());
        let h = ObsHandle::new(obs.clone() as Arc<dyn Observer>);
        assert!(h.enabled());
        h.on_step(1, 0, 0);
        h.on_step(2, 0, 0);
        assert_eq!(h.time_barrier(3, || "x"), "x");
        h.on_event(&Event::new(EventKind::Submitted, Some(7), 0));
        assert_eq!(obs.steps.load(Ordering::Relaxed), 2);
        assert_eq!(obs.barriers.load(Ordering::Relaxed), 1);
        assert_eq!(obs.events.load(Ordering::Relaxed), 1);
        assert_eq!(format!("{h:?}"), "ObsHandle(on)");
    }

    #[test]
    fn clones_share_the_observer() {
        let obs = Arc::new(CountingObserver::default());
        let h = ObsHandle::new(obs.clone() as Arc<dyn Observer>);
        let h2 = h.clone();
        h.on_step(1, 0, 0);
        h2.on_step(2, 0, 0);
        assert_eq!(obs.steps.load(Ordering::Relaxed), 2);
    }
}
