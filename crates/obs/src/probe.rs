//! Per-job progress probes: the live, lock-free view of one running
//! job that [`crate::Registry`] hands out and the engine layers feed.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::json::JsonValue;
use crate::metric::SpanStat;
use crate::phase::{Phase, PhaseProfiler, PhaseSample, TraceBuffer};
use crate::recorder::{Event, EventKind, FlightRecorder};
use crate::Observer;

/// Sentinel for "no incumbent yet" in the packed atomic.
const NO_INCUMBENT: i64 = i64::MIN;

/// Live telemetry of one job. All per-step fields are relaxed atomics:
/// the engine writes them from inside its step loop, dashboard readers
/// sample them from other threads, and neither ever blocks the other.
///
/// A probe implements [`Observer`], so it plugs straight into the
/// engine's `SimConfig` observation slot; lifecycle events additionally
/// forward to the shared [`FlightRecorder`].
pub struct JobProbe {
    id: u64,
    label: String,
    /// Engine steps executed (latest step counter seen).
    steps: AtomicU64,
    /// Total messages delivered to handlers.
    delivered: AtomicU64,
    /// Messages queued after the latest step.
    queued: AtomicU64,
    /// Open recursion records at the latest slice barrier.
    open_records: AtomicU64,
    /// Best incumbent seen ([`NO_INCUMBENT`] = none yet).
    incumbent: AtomicI64,
    /// Latest portfolio sync epoch.
    epoch: AtomicU64,
    /// Learned clauses the portfolio bus carried for this job.
    bus_clauses: AtomicU64,
    /// Incumbent broadcasts the portfolio bus carried for this job.
    bus_incumbents: AtomicU64,
    /// Checkpoints taken / payload bytes encoded.
    checkpoints: AtomicU64,
    checkpoint_bytes: AtomicU64,
    /// Successful durable-store persists of this job (PR 8 lifecycle).
    persists: AtomicU64,
    /// Times this job was recovered from the durable store.
    recovers: AtomicU64,
    /// Times the incumbent actually changed (the improvement-rate
    /// numerator).
    incumbent_updates: AtomicU64,
    /// Time spent encoding/decoding checkpoints.
    checkpoint_span: Arc<SpanStat>,
    /// Time shard workers spent waiting at step barriers.
    barrier_span: Arc<SpanStat>,
    /// Per-shard, per-phase wall-time attribution.
    phases: Arc<PhaseProfiler>,
    /// Individual phase spans for timeline export, when attached.
    trace: Option<Arc<TraceBuffer>>,
    /// Shared service-wide flight recorder, if attached.
    recorder: Option<Arc<FlightRecorder>>,
}

impl JobProbe {
    /// A probe for job `id`, forwarding events to `recorder` when given.
    pub fn new(id: u64, label: impl Into<String>, recorder: Option<Arc<FlightRecorder>>) -> Self {
        JobProbe {
            id,
            label: label.into(),
            steps: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            open_records: AtomicU64::new(0),
            incumbent: AtomicI64::new(NO_INCUMBENT),
            epoch: AtomicU64::new(0),
            bus_clauses: AtomicU64::new(0),
            bus_incumbents: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_bytes: AtomicU64::new(0),
            persists: AtomicU64::new(0),
            recovers: AtomicU64::new(0),
            incumbent_updates: AtomicU64::new(0),
            checkpoint_span: Arc::new(SpanStat::new()),
            barrier_span: Arc::new(SpanStat::new()),
            phases: Arc::new(PhaseProfiler::new()),
            trace: None,
            recorder,
        }
    }

    /// Attaches a span buffer so individual phase spans are kept for
    /// Chrome-trace timeline export (aggregates are always kept).
    pub fn with_phase_trace(mut self, trace: Arc<TraceBuffer>) -> Self {
        self.trace = Some(trace);
        self
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    pub fn open_records(&self) -> u64 {
        self.open_records.load(Ordering::Relaxed)
    }

    pub fn incumbent(&self) -> Option<i64> {
        match self.incumbent.load(Ordering::Relaxed) {
            NO_INCUMBENT => None,
            v => Some(v),
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    pub fn bus_clauses(&self) -> u64 {
        self.bus_clauses.load(Ordering::Relaxed)
    }

    pub fn bus_incumbents(&self) -> u64 {
        self.bus_incumbents.load(Ordering::Relaxed)
    }

    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes.load(Ordering::Relaxed)
    }

    /// Successful durable-store persists.
    pub fn persists(&self) -> u64 {
        self.persists.load(Ordering::Relaxed)
    }

    /// Recoveries from the durable store.
    pub fn recovers(&self) -> u64 {
        self.recovers.load(Ordering::Relaxed)
    }

    /// Times the incumbent improved (changed value).
    pub fn incumbent_updates(&self) -> u64 {
        self.incumbent_updates.load(Ordering::Relaxed)
    }

    /// Checkpoint encode/decode timing.
    pub fn checkpoint_span(&self) -> &SpanStat {
        &self.checkpoint_span
    }

    /// Shard barrier-wait timing.
    pub fn barrier_span(&self) -> &SpanStat {
        &self.barrier_span
    }

    /// Per-shard, per-phase wall-time attribution.
    pub fn phases(&self) -> &Arc<PhaseProfiler> {
        &self.phases
    }

    /// The buffered individual phase spans (empty without an attached
    /// trace buffer).
    pub fn trace_samples(&self) -> Vec<PhaseSample> {
        self.trace.as_ref().map(|t| t.samples()).unwrap_or_default()
    }

    /// Point-in-time JSON snapshot of the probe.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("id", JsonValue::UInt(self.id)),
            ("label", JsonValue::str(&self.label)),
            ("steps", JsonValue::UInt(self.steps())),
            ("delivered", JsonValue::UInt(self.delivered())),
            ("queued", JsonValue::UInt(self.queued())),
            ("open_records", JsonValue::UInt(self.open_records())),
            (
                "incumbent",
                match self.incumbent() {
                    Some(v) => JsonValue::Int(v),
                    None => JsonValue::Null,
                },
            ),
            ("epoch", JsonValue::UInt(self.epoch())),
            ("bus_clauses", JsonValue::UInt(self.bus_clauses())),
            ("bus_incumbents", JsonValue::UInt(self.bus_incumbents())),
            ("checkpoints", JsonValue::UInt(self.checkpoints())),
            ("checkpoint_bytes", JsonValue::UInt(self.checkpoint_bytes())),
            ("persists", JsonValue::UInt(self.persists())),
            ("recovers", JsonValue::UInt(self.recovers())),
            (
                "incumbent_updates",
                JsonValue::UInt(self.incumbent_updates()),
            ),
            (
                "barrier_wait_ms",
                JsonValue::Float(self.barrier_span.total_ns() as f64 / 1e6),
            ),
            ("phases", self.phases.to_json()),
        ])
    }
}

impl Observer for JobProbe {
    fn on_step(&self, step: u64, delivered: u64, queued: u64) {
        // `fetch_max`, not `store`: a restarted/resumed engine re-runs
        // from an earlier step; the probe tracks the furthest point.
        self.steps.fetch_max(step, Ordering::Relaxed);
        self.delivered.fetch_add(delivered, Ordering::Relaxed);
        self.queued.store(queued, Ordering::Relaxed);
    }

    fn on_barrier_wait(&self, shard: usize, nanos: u64) {
        self.barrier_span.record(nanos);
        self.phases.record(shard, Phase::BarrierWait, nanos);
        if let Some(trace) = &self.trace {
            trace.record(shard, Phase::BarrierWait, nanos);
        }
    }

    fn on_progress(&self, steps: u64, open_records: u64, incumbent: Option<i64>) {
        self.steps.fetch_max(steps, Ordering::Relaxed);
        self.open_records.store(open_records, Ordering::Relaxed);
        if let Some(v) = incumbent {
            // Count actual changes: the improvement-rate signal should
            // not tick when progress re-reports the same bound.
            if self.incumbent.swap(v, Ordering::Relaxed) != v {
                self.incumbent_updates.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn on_epoch(&self, epoch: u64, _member: usize, steps: u64, clauses: u64, incumbents: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
        self.steps.fetch_max(steps, Ordering::Relaxed);
        self.bus_clauses.fetch_add(clauses, Ordering::Relaxed);
        self.bus_incumbents.fetch_add(incumbents, Ordering::Relaxed);
    }

    fn on_checkpoint(&self, bytes: u64, nanos: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.checkpoint_span.record(nanos);
    }

    fn on_restore(&self, _bytes: u64, nanos: u64) {
        self.checkpoint_span.record(nanos);
    }

    fn on_event(&self, event: &Event) {
        match event.kind {
            // A failed persist is reported as `Persisted` with a
            // negative value; only successes count as durable progress.
            EventKind::Persisted if event.value >= 0 => {
                self.persists.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Recovered => {
                self.recovers.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if let Some(recorder) = &self.recorder {
            let mut event = event.clone();
            event.job.get_or_insert(self.id);
            recorder.record(event);
        }
    }

    fn on_phase(&self, shard: usize, phase: Phase, nanos: u64) {
        self.phases.record(shard, phase, nanos);
        if let Some(trace) = &self.trace {
            trace.record(shard, phase, nanos);
        }
    }

    fn on_shard_active(&self, shard: usize, nodes: u64) {
        self.phases.set_active(shard, nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventKind;

    #[test]
    fn probe_accumulates_steps_and_progress() {
        let p = JobProbe::new(3, "sat", None);
        p.on_step(1, 4, 10);
        p.on_step(2, 6, 8);
        assert_eq!(p.steps(), 2);
        assert_eq!(p.delivered(), 10);
        assert_eq!(p.queued(), 8);
        p.on_progress(5, 7, Some(-2));
        assert_eq!(p.steps(), 5);
        assert_eq!(p.open_records(), 7);
        assert_eq!(p.incumbent(), Some(-2));
        // Progress without an incumbent keeps the old one.
        p.on_progress(6, 3, None);
        assert_eq!(p.incumbent(), Some(-2));
    }

    #[test]
    fn restarted_run_never_regresses_the_step_counter() {
        let p = JobProbe::new(1, "replay", None);
        p.on_step(100, 0, 0);
        p.on_step(5, 0, 0); // deterministic replay from step 0
        assert_eq!(p.steps(), 100);
    }

    #[test]
    fn events_are_attributed_to_the_probe_job() {
        let rec = Arc::new(FlightRecorder::new(8));
        let p = JobProbe::new(42, "x", Some(rec.clone()));
        p.on_event(&Event::new(EventKind::Started, None, 0));
        assert_eq!(rec.snapshot()[0].job, Some(42));
    }

    #[test]
    fn json_snapshot_includes_incumbent_null() {
        let p = JobProbe::new(1, "k", None);
        let json = p.to_json().to_string();
        assert!(json.contains("\"incumbent\":null"), "{json}");
        assert!(json.contains("\"persists\":0"), "{json}");
        assert!(json.contains("\"phases\""), "{json}");
    }

    #[test]
    fn persist_and_recover_events_are_counted() {
        let p = JobProbe::new(5, "durable", None);
        p.on_event(&Event::new(EventKind::Persisted, Some(5), 100));
        p.on_event(&Event::new(EventKind::Persisted, Some(5), 0));
        p.on_event(&Event::new(EventKind::Persisted, Some(5), -1)); // failure
        p.on_event(&Event::new(EventKind::Recovered, Some(5), 100));
        p.on_event(&Event::new(EventKind::Completed, Some(5), 0));
        assert_eq!(p.persists(), 2, "failures don't count");
        assert_eq!(p.recovers(), 1);
    }

    #[test]
    fn incumbent_updates_count_changes_only() {
        let p = JobProbe::new(2, "bnb", None);
        p.on_progress(1, 0, Some(10));
        p.on_progress(2, 0, Some(10));
        p.on_progress(3, 0, Some(7));
        p.on_progress(4, 0, None);
        assert_eq!(p.incumbent_updates(), 2);
    }

    #[test]
    fn phase_hooks_feed_profiler_and_trace() {
        use crate::phase::{Phase, TraceBuffer};
        let p = JobProbe::new(3, "sharded", None)
            .with_phase_trace(std::sync::Arc::new(TraceBuffer::new(8)));
        p.on_phase(1, Phase::Handler, 40);
        p.on_shard_active(1, 9);
        assert_eq!(p.phases().phase_total(Phase::Handler), (1, 40, 40));
        assert_eq!(p.phases().shard(1).unwrap().active(), 9);
        assert_eq!(p.trace_samples().len(), 1);
    }
}
