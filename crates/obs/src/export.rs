//! Wire-format exporters (dependency-free, like everything here): a
//! Chrome-trace/Perfetto JSON writer for per-shard phase timelines, and
//! a Prometheus text-exposition encoder over the registry's counters,
//! gauges, spans and per-job probes.
//!
//! Both formats are validated in tests: the trace output parses back
//! through [`crate::JsonValue::parse`], and the Prometheus output is
//! checked line-by-line against the exposition grammar.

use std::sync::Arc;

use crate::json::JsonValue;
use crate::phase::Phase;
use crate::probe::JobProbe;
use crate::registry::Registry;

/// Renders the probes' buffered phase spans as a Chrome-trace (a.k.a.
/// Trace Event Format) JSON document — loadable in `chrome://tracing`
/// and Perfetto. One *process* per job, one *thread* per shard, one
/// complete (`"ph":"X"`) event per recorded span; timestamps are
/// microseconds relative to each probe's trace-buffer epoch.
///
/// Probes without an attached trace buffer contribute only their
/// process-name metadata (aggregates carry no timeline).
pub fn chrome_trace(probes: &[Arc<JobProbe>]) -> JsonValue {
    let mut events = Vec::new();
    for probe in probes {
        let pid = probe.id();
        events.push(JsonValue::object([
            ("name", JsonValue::str("process_name")),
            ("ph", JsonValue::str("M")),
            ("pid", JsonValue::UInt(pid)),
            ("tid", JsonValue::UInt(0)),
            (
                "args",
                JsonValue::object([("name", JsonValue::str(probe.label()))]),
            ),
        ]));
        let samples = probe.trace_samples();
        let mut shards: Vec<usize> = samples.iter().map(|s| s.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        for shard in shards {
            events.push(JsonValue::object([
                ("name", JsonValue::str("thread_name")),
                ("ph", JsonValue::str("M")),
                ("pid", JsonValue::UInt(pid)),
                ("tid", JsonValue::UInt(shard as u64)),
                (
                    "args",
                    JsonValue::object([("name", JsonValue::str(format!("shard {shard}")))]),
                ),
            ]));
        }
        for sample in samples {
            let dur_us = sample.dur_nanos as f64 / 1_000.0;
            let start_us = sample.end_micros.saturating_sub(sample.dur_nanos / 1_000);
            events.push(JsonValue::object([
                ("name", JsonValue::str(sample.phase.as_str())),
                ("cat", JsonValue::str("phase")),
                ("ph", JsonValue::str("X")),
                ("ts", JsonValue::UInt(start_us)),
                ("dur", JsonValue::Float(dur_us)),
                ("pid", JsonValue::UInt(pid)),
                ("tid", JsonValue::UInt(sample.shard as u64)),
            ]));
        }
    }
    JsonValue::object([
        ("traceEvents", JsonValue::Array(events)),
        ("displayTimeUnit", JsonValue::str("ms")),
    ])
}

/// Maps an internal metric name onto the Prometheus name charset
/// (`[a-zA-Z0-9_:]`, non-digit first): every other character becomes
/// `_`.
fn sanitize(name: &str, out: &mut String) {
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            _ => out.push('_'),
        }
    }
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

struct Expo {
    out: String,
}

impl Expo {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                escape_label(v, &mut self.out);
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value.is_finite() && value.fract() == 0.0 && value.abs() < 9e15 {
            self.out.push_str(&format!("{value:.0}"));
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
    }
}

/// Encodes the registry — named counters/gauges/spans plus every
/// per-job probe and its phase profile — in the Prometheus text
/// exposition format (version 0.0.4), ready to serve from a
/// `/metrics` endpoint. All metric names carry the `hyperspace_`
/// prefix; per-job samples carry `job`/`label` labels, phase samples
/// additionally `shard`/`phase`.
pub fn prometheus(registry: &Registry) -> String {
    let mut expo = Expo { out: String::new() };

    for (name, value) in registry.counter_values() {
        let mut metric = String::from("hyperspace_");
        sanitize(name, &mut metric);
        expo.family(&metric, "counter", "registry counter");
        expo.sample(&metric, &[], value as f64);
    }
    for (name, value) in registry.gauge_values() {
        let mut metric = String::from("hyperspace_");
        sanitize(name, &mut metric);
        expo.family(&metric, "gauge", "registry gauge");
        expo.sample(&metric, &[], value as f64);
    }
    for (name, count, total_ns, max_ns) in registry.span_values() {
        let mut base = String::from("hyperspace_span_");
        sanitize(name, &mut base);
        let counts = format!("{base}_count");
        expo.family(&counts, "counter", "span invocations");
        expo.sample(&counts, &[], count as f64);
        let totals = format!("{base}_total_ns");
        expo.family(&totals, "counter", "span nanoseconds, summed");
        expo.sample(&totals, &[], total_ns as f64);
        let maxes = format!("{base}_max_ns");
        expo.family(&maxes, "gauge", "longest span in nanoseconds");
        expo.sample(&maxes, &[], max_ns as f64);
    }

    let probes = registry.probes();
    type JobFamily = (&'static str, &'static str, fn(&JobProbe) -> f64);
    let job_families: [JobFamily; 8] = [
        ("hyperspace_job_steps", "counter", |p| p.steps() as f64),
        ("hyperspace_job_delivered", "counter", |p| {
            p.delivered() as f64
        }),
        ("hyperspace_job_queued", "gauge", |p| p.queued() as f64),
        ("hyperspace_job_open_records", "gauge", |p| {
            p.open_records() as f64
        }),
        ("hyperspace_job_checkpoints", "counter", |p| {
            p.checkpoints() as f64
        }),
        ("hyperspace_job_checkpoint_bytes", "counter", |p| {
            p.checkpoint_bytes() as f64
        }),
        ("hyperspace_job_persists", "counter", |p| {
            p.persists() as f64
        }),
        ("hyperspace_job_recovers", "counter", |p| {
            p.recovers() as f64
        }),
    ];
    for (metric, kind, read) in job_families {
        if probes.is_empty() {
            continue;
        }
        expo.family(metric, kind, "per-job probe value");
        for probe in &probes {
            let job = probe.id().to_string();
            expo.sample(
                metric,
                &[("job", &job), ("label", probe.label())],
                read(probe),
            );
        }
    }

    // Per-shard phase attribution, flattened over (job, shard, phase).
    let mut phase_counts: Vec<(u64, String, usize, Phase, u64, u64)> = Vec::new();
    for probe in &probes {
        for (shard, stats) in probe.phases().shards().iter().enumerate() {
            for phase in Phase::ALL {
                let stat = stats.stat(phase);
                if stat.count() > 0 {
                    phase_counts.push((
                        probe.id(),
                        probe.label().to_string(),
                        shard,
                        phase,
                        stat.count(),
                        stat.total_ns(),
                    ));
                }
            }
        }
    }
    if !phase_counts.is_empty() {
        expo.family(
            "hyperspace_phase_count",
            "counter",
            "recorded spans per job/shard/phase",
        );
        for (job, label, shard, phase, count, _) in &phase_counts {
            let job = job.to_string();
            let shard = shard.to_string();
            expo.sample(
                "hyperspace_phase_count",
                &[
                    ("job", &job),
                    ("label", label),
                    ("shard", &shard),
                    ("phase", phase.as_str()),
                ],
                *count as f64,
            );
        }
        expo.family(
            "hyperspace_phase_total_ns",
            "counter",
            "attributed nanoseconds per job/shard/phase",
        );
        for (job, label, shard, phase, _, total) in &phase_counts {
            let job = job.to_string();
            let shard = shard.to_string();
            expo.sample(
                "hyperspace_phase_total_ns",
                &[
                    ("job", &job),
                    ("label", label),
                    ("shard", &shard),
                    ("phase", phase.as_str()),
                ],
                *total as f64,
            );
        }
    }

    expo.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::TraceBuffer;

    fn traced_probe() -> Arc<JobProbe> {
        let probe =
            JobProbe::new(7, "torus", None).with_phase_trace(Arc::new(TraceBuffer::new(64)));
        let probe = Arc::new(probe);
        use crate::Observer;
        probe.on_phase(0, Phase::Delivery, 1_000);
        probe.on_phase(0, Phase::Handler, 2_000);
        probe.on_phase(1, Phase::Handler, 3_000);
        probe
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_events() {
        let trace = chrome_trace(&[traced_probe()]);
        let parsed = JsonValue::parse(&trace.to_string()).expect("trace parses");
        let events = match parsed.get("traceEvents") {
            Some(JsonValue::Array(events)) => events,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let spans = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(JsonValue::Str(ph)) if ph == "X"))
            .count();
        assert_eq!(spans, 3, "one X event per recorded span");
        let threads = events
            .iter()
            .filter(|e| matches!(e.get("name"), Some(JsonValue::Str(n)) if n == "thread_name"))
            .count();
        assert_eq!(threads, 2, "one thread per shard");
    }

    #[test]
    fn prometheus_encodes_registry_and_probes() {
        let registry = Registry::new(16);
        registry.counter("jobs.submitted").add(2);
        registry.gauge("queue.depth").set(5);
        registry.span("store.persist").record(123);
        let probe = registry.probe(1, "sat");
        use crate::Observer;
        probe.on_step(10, 3, 1);
        probe.on_phase(0, Phase::Fsync, 999);
        let out = prometheus(&registry);
        assert!(out.contains("hyperspace_jobs_submitted 2\n"), "{out}");
        assert!(out.contains("hyperspace_queue_depth 5\n"), "{out}");
        assert!(
            out.contains("hyperspace_span_store_persist_total_ns 123\n"),
            "{out}"
        );
        assert!(
            out.contains("hyperspace_job_steps{job=\"1\",label=\"sat\"} 10\n"),
            "{out}"
        );
        assert!(
            out.contains(
                "hyperspace_phase_total_ns{job=\"1\",label=\"sat\",shard=\"0\",phase=\"fsync\"} 999\n"
            ),
            "{out}"
        );
    }

    #[test]
    fn sanitize_maps_onto_the_prometheus_charset() {
        let mut out = String::new();
        sanitize("jobs.submitted-total", &mut out);
        assert_eq!(out, "jobs_submitted_total");
        let mut out = String::new();
        sanitize("9lives", &mut out);
        assert_eq!(out, "_lives");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = String::new();
        escape_label("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd");
    }
}
