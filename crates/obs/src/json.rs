//! A self-contained JSON value and writer (no serde: the workspace is
//! dependency-free by policy). Snapshots and `BENCH_*.json` baselines
//! render through `Display`, which emits valid, deterministic JSON —
//! object fields keep insertion order.

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Fields in insertion order (deterministic output).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a field up in an object (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, for numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::UInt(n) => out.push_str(&n.to_string()),
        JsonValue::Float(f) => {
            // JSON has no NaN/Infinity; clamp to null like JS does.
            if f.is_finite() {
                out.push_str(&format!("{f:.6}"));
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => escape(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Pretty-prints with two-space indentation (for committed baselines).
pub fn pretty(v: &JsonValue) -> String {
    fn go(v: &JsonValue, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match v {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    go(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, item)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    escape(k, out);
                    out.push_str(": ");
                    go(item, indent + 1, out);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            other => write_value(other, out),
        }
    }
    let mut out = String::new();
    go(v, 0, &mut out);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_valid_json() {
        let v = JsonValue::object([
            ("name", JsonValue::str("obs")),
            ("count", JsonValue::UInt(3)),
            ("ratio", JsonValue::Float(0.5)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::Int(-1), JsonValue::str("a\"b")]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"obs","count":3,"ratio":0.500000,"ok":true,"none":null,"items":[-1,"a\"b"]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::str("a\nb\tc\u{1}");
        assert_eq!(v.to_string(), "\"a\\nb\\tc\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn get_and_as_f64() {
        let v = JsonValue::object([("x", JsonValue::UInt(4))]);
        assert_eq!(v.get("x").and_then(|x| x.as_f64()), Some(4.0));
        assert!(v.get("y").is_none());
    }

    #[test]
    fn pretty_round_trips_shape() {
        let v = JsonValue::object([
            ("a", JsonValue::Array(vec![JsonValue::UInt(1)])),
            ("b", JsonValue::object([("c", JsonValue::Null)])),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let p = pretty(&v);
        assert!(p.contains("\"a\": [\n"), "{p}");
        assert!(p.contains("\"empty\": []"), "{p}");
        assert!(p.ends_with("}\n"), "{p}");
    }
}
