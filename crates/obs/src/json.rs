//! A self-contained JSON value and writer (no serde: the workspace is
//! dependency-free by policy). Snapshots and `BENCH_*.json` baselines
//! render through `Display`, which emits valid, deterministic JSON —
//! object fields keep insertion order.

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Fields in insertion order (deterministic output).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a field up in an object (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, for numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Parses a JSON document (the reader half of the writer above, so
    /// exporter output can be round-trip validated without serde).
    /// Integral numbers parse to `UInt`/`Int`, everything else numeric
    /// to `Float`; duplicate object keys are kept in order like the
    /// writer emits them.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Recursion guard for the parser (snapshots nest a handful of levels;
/// anything deeper is hostile input, not telemetry).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Snapshot output only escapes control chars;
                            // surrogate pairs decode to the replacement
                            // char rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::UInt(n) => out.push_str(&n.to_string()),
        JsonValue::Float(f) => {
            // JSON has no NaN/Infinity; clamp to null like JS does.
            if f.is_finite() {
                out.push_str(&format!("{f:.6}"));
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => escape(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Pretty-prints with two-space indentation (for committed baselines).
pub fn pretty(v: &JsonValue) -> String {
    fn go(v: &JsonValue, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match v {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    go(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, item)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    escape(k, out);
                    out.push_str(": ");
                    go(item, indent + 1, out);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            other => write_value(other, out),
        }
    }
    let mut out = String::new();
    go(v, 0, &mut out);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_valid_json() {
        let v = JsonValue::object([
            ("name", JsonValue::str("obs")),
            ("count", JsonValue::UInt(3)),
            ("ratio", JsonValue::Float(0.5)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::Int(-1), JsonValue::str("a\"b")]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"obs","count":3,"ratio":0.500000,"ok":true,"none":null,"items":[-1,"a\"b"]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::str("a\nb\tc\u{1}");
        assert_eq!(v.to_string(), "\"a\\nb\\tc\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn get_and_as_f64() {
        let v = JsonValue::object([("x", JsonValue::UInt(4))]);
        assert_eq!(v.get("x").and_then(|x| x.as_f64()), Some(4.0));
        assert!(v.get("y").is_none());
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = JsonValue::object([
            ("name", JsonValue::str("obs \"quoted\"\n")),
            ("count", JsonValue::UInt(3)),
            ("neg", JsonValue::Int(-7)),
            ("ratio", JsonValue::Float(0.5)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::Object(Vec::new())]),
            ),
        ]);
        let compact = JsonValue::parse(&v.to_string()).expect("compact parses");
        assert_eq!(compact, v);
        let prettied = JsonValue::parse(&pretty(&v)).expect("pretty parses");
        assert_eq!(prettied, v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"abc", "{]"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).is_err(), "depth limit enforced");
    }

    #[test]
    fn parse_decodes_escapes() {
        let v = JsonValue::parse(r#""aA\n\t\\""#).expect("escapes parse");
        assert_eq!(v, JsonValue::Str("aA\n\t\\".into()));
    }

    #[test]
    fn pretty_round_trips_shape() {
        let v = JsonValue::object([
            ("a", JsonValue::Array(vec![JsonValue::UInt(1)])),
            ("b", JsonValue::object([("c", JsonValue::Null)])),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let p = pretty(&v);
        assert!(p.contains("\"a\": [\n"), "{p}");
        assert!(p.contains("\"empty\": []"), "{p}");
        assert!(p.ends_with("}\n"), "{p}");
    }
}
