//! The service-wide metric registry: named counters/gauges/spans, the
//! shared flight recorder, per-job probes, and crash dumps.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;
use crate::metric::{Counter, Gauge, SpanStat};
use crate::probe::JobProbe;
use crate::recorder::{Event, FlightRecorder};

/// The flight-recorder tail preserved when a job's handler panicked.
#[derive(Clone, Debug)]
pub struct CrashDump {
    /// The job whose execution crashed.
    pub job: u64,
    /// The panic payload (best-effort string).
    pub message: String,
    /// The recorder's most recent events at dump time, oldest first.
    pub events: Vec<Event>,
}

impl CrashDump {
    /// The dump as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("job", JsonValue::UInt(self.job)),
            ("message", JsonValue::str(&self.message)),
            (
                "events",
                JsonValue::Array(self.events.iter().map(Event::to_json).collect()),
            ),
        ])
    }
}

/// How many flight-recorder events a crash dump preserves by default
/// (configurable per registry via [`Registry::with_limits`]).
pub const CRASH_DUMP_TAIL: usize = 32;

/// A registry of named metrics plus per-job probes. Names are interned
/// `&'static str`s in sorted maps, so JSON snapshots are deterministic.
/// All accessors hand out shared cells — callers cache them and update
/// lock-free; the registry mutexes guard only name lookup and
/// registration, never hot-path updates.
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    spans: Mutex<BTreeMap<&'static str, Arc<SpanStat>>>,
    probes: Mutex<BTreeMap<u64, Arc<JobProbe>>>,
    crashes: Mutex<Vec<CrashDump>>,
    recorder: Arc<FlightRecorder>,
    crash_tail: usize,
}

impl Registry {
    /// A registry whose flight recorder keeps `capacity` events, with
    /// the default crash-dump tail ([`CRASH_DUMP_TAIL`]).
    pub fn new(capacity: usize) -> Registry {
        Registry::with_limits(capacity, CRASH_DUMP_TAIL)
    }

    /// A registry with explicit flight-recorder capacity and crash-dump
    /// tail length. Both are bounds-checked: capacity 0 keeps one event
    /// (a recorder that silently kept nothing would make crash dumps
    /// lie), and the tail is clamped into `[1, capacity]`.
    pub fn with_limits(capacity: usize, crash_tail: usize) -> Registry {
        let capacity = capacity.max(1);
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            probes: Mutex::new(BTreeMap::new()),
            crashes: Mutex::new(Vec::new()),
            recorder: Arc::new(FlightRecorder::new(capacity)),
            crash_tail: crash_tail.clamp(1, capacity),
        }
    }

    /// The crash-dump tail length in effect.
    pub fn crash_tail(&self) -> usize {
        self.crash_tail
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counters
            .lock()
            .expect("registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The named span statistic, created on first use.
    pub fn span(&self, name: &'static str) -> Arc<SpanStat> {
        self.spans
            .lock()
            .expect("registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The shared flight recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Records a lifecycle event into the flight recorder.
    pub fn record(&self, event: Event) {
        self.recorder.record(event);
    }

    /// Registers (or returns the existing) probe for job `id`, wired to
    /// the shared flight recorder.
    pub fn probe(&self, id: u64, label: &str) -> Arc<JobProbe> {
        self.probes
            .lock()
            .expect("registry poisoned")
            .entry(id)
            .or_insert_with(|| Arc::new(JobProbe::new(id, label, Some(self.recorder.clone()))))
            .clone()
    }

    /// All registered probes, ordered by job id.
    pub fn probes(&self) -> Vec<Arc<JobProbe>> {
        self.probes
            .lock()
            .expect("registry poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Preserves the flight recorder's tail as a crash dump for `job`.
    pub fn dump_crash(&self, job: u64, message: impl Into<String>) -> CrashDump {
        let dump = CrashDump {
            job,
            message: message.into(),
            events: self.recorder.last_n(self.crash_tail),
        };
        self.crashes
            .lock()
            .expect("registry poisoned")
            .push(dump.clone());
        dump
    }

    /// All crash dumps captured so far.
    pub fn crashes(&self) -> Vec<CrashDump> {
        self.crashes.lock().expect("registry poisoned").clone()
    }

    /// `(name, value)` of every registered counter, name-ordered (the
    /// exporters' read surface).
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (*k, v.get()))
            .collect()
    }

    /// `(name, value)` of every registered gauge, name-ordered.
    pub fn gauge_values(&self) -> Vec<(&'static str, u64)> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (*k, v.get()))
            .collect()
    }

    /// `(name, count, total_ns, max_ns)` of every registered span
    /// statistic, name-ordered.
    pub fn span_values(&self) -> Vec<(&'static str, u64, u64, u64)> {
        self.spans
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (*k, v.count(), v.total_ns(), v.max_ns()))
            .collect()
    }

    /// Point-in-time JSON snapshot: counters, gauges, spans, per-job
    /// probes, the flight recorder tail and any crash dumps.
    pub fn to_json(&self) -> JsonValue {
        let counters: Vec<_> = {
            let map = self.counters.lock().expect("registry poisoned");
            map.iter()
                .map(|(k, v)| (k.to_string(), JsonValue::UInt(v.get())))
                .collect()
        };
        let gauges: Vec<_> = {
            let map = self.gauges.lock().expect("registry poisoned");
            map.iter()
                .map(|(k, v)| (k.to_string(), JsonValue::UInt(v.get())))
                .collect()
        };
        let spans: Vec<_> = {
            let map = self.spans.lock().expect("registry poisoned");
            map.iter()
                .map(|(k, v)| {
                    (
                        k.to_string(),
                        JsonValue::object([
                            ("count", JsonValue::UInt(v.count())),
                            ("total_ns", JsonValue::UInt(v.total_ns())),
                            ("max_ns", JsonValue::UInt(v.max_ns())),
                            ("mean_ns", JsonValue::UInt(v.mean_ns())),
                        ]),
                    )
                })
                .collect()
        };
        let jobs: Vec<JsonValue> = self.probes().iter().map(|p| p.to_json()).collect();
        let events: Vec<JsonValue> = self
            .recorder
            .snapshot()
            .iter()
            .map(Event::to_json)
            .collect();
        let crashes: Vec<JsonValue> = self.crashes().iter().map(CrashDump::to_json).collect();
        JsonValue::object([
            ("counters", JsonValue::Object(counters)),
            ("gauges", JsonValue::Object(gauges)),
            ("spans", JsonValue::Object(spans)),
            ("jobs", JsonValue::Array(jobs)),
            ("events", JsonValue::Array(events)),
            ("crashes", JsonValue::Array(crashes)),
        ])
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventKind;
    use crate::Observer;

    #[test]
    fn named_cells_are_shared() {
        let r = Registry::default();
        r.counter("jobs.submitted").inc();
        r.counter("jobs.submitted").add(2);
        assert_eq!(r.counter("jobs.submitted").get(), 3);
        r.gauge("queue.depth").set(7);
        assert_eq!(r.gauge("queue.depth").get(), 7);
        r.span("slice").record(100);
        assert_eq!(r.span("slice").count(), 1);
    }

    #[test]
    fn probes_register_once_per_job() {
        let r = Registry::default();
        let a = r.probe(1, "sat");
        let b = r.probe(1, "ignored");
        assert!(Arc::ptr_eq(&a, &b));
        a.on_step(5, 1, 0);
        assert_eq!(r.probes()[0].steps(), 5);
    }

    #[test]
    fn crash_dump_preserves_recorder_tail() {
        let r = Registry::new(4);
        for i in 0..6 {
            r.record(Event::new(EventKind::SliceYielded, Some(9), i));
        }
        let dump = r.dump_crash(9, "boom");
        assert_eq!(dump.job, 9);
        assert_eq!(dump.events.len(), 4);
        assert_eq!(dump.events.last().unwrap().value, 5);
        assert_eq!(r.crashes().len(), 1);
    }

    #[test]
    fn limits_are_bounds_checked() {
        // Capacity 0 and 1: the recorder still works and crash dumps
        // still carry the most recent event — the regression the
        // configurable limits must not reintroduce.
        for capacity in [0, 1] {
            let r = Registry::with_limits(capacity, 0);
            assert_eq!(r.recorder().capacity(), 1);
            assert_eq!(r.crash_tail(), 1);
            r.record(Event::new(EventKind::Submitted, Some(1), 0));
            r.record(Event::new(EventKind::Crashed, Some(1), 0));
            let dump = r.dump_crash(1, "boom");
            assert_eq!(dump.events.len(), 1);
            assert_eq!(dump.events[0].kind, EventKind::Crashed);
        }
        // Tail never exceeds capacity.
        assert_eq!(Registry::with_limits(4, 99).crash_tail(), 4);
        assert_eq!(Registry::default().crash_tail(), CRASH_DUMP_TAIL);
    }

    #[test]
    fn exporter_read_surface_is_name_ordered() {
        let r = Registry::default();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.gauge("g").set(7);
        r.span("s").record(50);
        assert_eq!(r.counter_values(), vec![("a", 2), ("b", 1)]);
        assert_eq!(r.gauge_values(), vec![("g", 7)]);
        assert_eq!(r.span_values(), vec![("s", 1, 50, 50)]);
    }

    #[test]
    fn json_snapshot_has_the_documented_sections() {
        let r = Registry::default();
        r.counter("c").inc();
        r.probe(1, "x");
        let json = r.to_json().to_string();
        for key in ["counters", "gauges", "spans", "jobs", "events", "crashes"] {
            assert!(json.contains(&format!("\"{key}\"")), "{key}: {json}");
        }
    }
}
