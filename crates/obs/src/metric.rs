//! Lock-free metric primitives: counters, gauges, span statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Aggregated timing of a named region: invocation count, total and
/// maximum duration. All updates are relaxed atomics, so recording from
/// shard worker threads never serialises them.
#[derive(Debug, Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    pub fn new() -> SpanStat {
        SpanStat::default()
    }

    /// Records one completed span of `nanos`.
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a clamped `u64::MAX` span (see
        // `crate::saturating_nanos`) must keep reading as "absurdly
        // long", not reset the accumulated total to something small.
        let prev = self.total_ns.fetch_add(nanos, Ordering::Relaxed);
        if prev.checked_add(nanos).is_none() {
            self.total_ns.store(u64::MAX, Ordering::Relaxed);
        }
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Starts a drop-guard timer that records into this stat.
    pub fn start(self: &Arc<Self>) -> SpanTimer {
        SpanTimer {
            stat: Arc::clone(self),
            started: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Mean span duration in nanoseconds (0 when never recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns().checked_div(self.count()).unwrap_or(0)
    }
}

/// Drop-guard timer: the span runs from construction to drop.
pub struct SpanTimer {
    stat: Arc<SpanStat>,
    started: Instant,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.stat
            .record(crate::saturating_nanos(self.started.elapsed()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_on_clone() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        let g2 = g.clone();
        g.set(9);
        assert_eq!(g2.get(), 9);
        g2.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn span_stat_aggregates() {
        let s = SpanStat::new();
        s.record(10);
        s.record(30);
        s.record(20);
        assert_eq!(s.count(), 3);
        assert_eq!(s.total_ns(), 60);
        assert_eq!(s.max_ns(), 30);
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let s = Arc::new(SpanStat::new());
        {
            let _t = s.start();
        }
        assert_eq!(s.count(), 1);
    }
}
