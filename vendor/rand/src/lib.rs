//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim supplies exactly the surface the workspace uses: a seedable
//! small PRNG (`rngs::SmallRng`), the [`Rng`] extension methods
//! `gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets.
//! Streams are deterministic per seed, which is all the workspace
//! relies on (it never assumes specific values).

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (shim: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let lo = self.start as u128;
                let hi = self.end as u128;
                assert!(hi > lo, "cannot sample empty range");
                let span = (hi - lo) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the small spans used here.
                let x = rng();
                let v = ((x as u128 * span as u128) >> 64) as u128 + lo;
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits give a uniform double in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u32> = (0..32).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.gen_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(2);
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&trues), "got {trues}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
