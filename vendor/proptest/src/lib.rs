//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this shim supplies
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] test macro, [`Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`Just`], [`any`], ranges and tuples as strategies,
//! `collection::vec`, and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! no shrinking. Inputs are drawn from a seeded deterministic PRNG
//! (stable across runs — failures are reproducible), each case's values
//! are generated independently, and assertion failures panic with the
//! case number so the failing input can be re-derived.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The generator handed to strategies.
pub type TestRng = SmallRng;

/// Deterministic per-test, per-case generator.
pub fn rng_for(case: u64, test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Test-harness configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run, honouring the `PROPTEST_CASES`
    /// environment override (parity with real proptest's env handling;
    /// CI uses it to deepen the equivalence suites without code edits).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy over the full range of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// One boxed alternative inside a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Builds a union from boxed arms (used by the macro).
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one strategy into an arm.
    pub fn boxed_arm<S>(s: S) -> UnionArm<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| s.sample(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing vectors of `elem` with length drawn from
    /// `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Boolean property assertion (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Union::boxed_arm($arm) ),+ ])
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` running its
/// body over `cases` random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.effective_cases() as u64 {
                let mut rng = $crate::rng_for(case, stringify!($name));
                $(
                    let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_cases_defaults_to_configured_count() {
        // Serialise env mutation within this test binary.
        let cfg = ProptestConfig::with_cases(12);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(cfg.effective_cases(), 12);
        std::env::set_var("PROPTEST_CASES", "64");
        assert_eq!(cfg.effective_cases(), 64);
        std::env::set_var("PROPTEST_CASES", "not a number");
        assert_eq!(cfg.effective_cases(), 12);
        std::env::remove_var("PROPTEST_CASES");
    }
}
