//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so this shim provides
//! the subset of criterion's API the workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`measurement_time`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timing loop. Statistics are min/mean/max over the
//! collected samples, printed to stdout; there is no HTML report.

use std::time::{Duration, Instant};

/// Benchmark identifier, rendered as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    target_time: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each call, until the sample budget or
    /// the measurement-time budget is exhausted (whichever first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.target_time {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            target_time: self.measurement_time,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Runs one benchmark with an input payload.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            target_time: self.measurement_time,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<48} {:>10.3?} .. {:>10.3?} (mean {:>10.3?}, {} samples)",
        min,
        max,
        mean,
        samples.len()
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            measurement_time,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        self
    }
}

/// Re-export for `b.iter(|| black_box(..))` call sites.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
